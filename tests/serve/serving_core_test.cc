#include "serve/serving_core.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "kdv/engine.h"
#include "util/exec_context.h"

namespace slam {
namespace {

PointDataset ServeData() {
  return *GenerateCityDataset(City::kSeattle, 0.003, 11);  // ~2.6k points
}

ServingOptions SmallOptions() {
  ServingOptions options;
  options.width_px = 40;
  options.height_px = 30;
  options.degrade_mode = DegradeMode::kSample;
  options.max_halvings = 1;
  options.retry.max_attempts = 2;
  options.retry.backoff.initial_seconds = 0.001;
  options.retry.backoff.max_seconds = 0.004;
  options.breaker.window_size = 8;
  options.breaker.min_samples = 4;
  options.breaker.failure_threshold = 0.5;
  options.breaker.open_cooldown_seconds = 60.0;  // stays open for the test
  return options;
}

TEST(ServingCoreTest, CreateValidation) {
  EXPECT_TRUE(ServingCore::Create(PointDataset("empty"), SmallOptions())
                  .status()
                  .IsInvalidArgument());
  ServingOptions bad = SmallOptions();
  bad.width_px = 0;
  EXPECT_TRUE(
      ServingCore::Create(ServeData(), bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.retry.max_attempts = 0;
  EXPECT_TRUE(
      ServingCore::Create(ServeData(), bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.bandwidth = -1.0;
  EXPECT_TRUE(
      ServingCore::Create(ServeData(), bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.admission.max_concurrent = 0;
  EXPECT_TRUE(
      ServingCore::Create(ServeData(), bad).status().IsInvalidArgument());
  bad = SmallOptions();
  bad.breaker.failure_threshold = 2.0;
  EXPECT_TRUE(
      ServingCore::Create(ServeData(), bad).status().IsInvalidArgument());
}

TEST(ServingCoreTest, ServesFullFidelityByDefault) {
  auto core = *ServingCore::Create(ServeData(), SmallOptions());
  const auto response = core->Handle({});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->fidelity, Fidelity::kFull);
  EXPECT_EQ(response->degrade_level, 0);
  EXPECT_EQ(response->map.width(), 40);
  EXPECT_GE(response->latency_seconds, 0.0);
  const ServingStats stats = core->stats();
  EXPECT_EQ(stats.requests, 1);
  EXPECT_EQ(stats.ok_full, 1);
  EXPECT_EQ(stats.ok_degraded + stats.shed + stats.failed, 0);
}

TEST(ServingCoreTest, GenerousDeadlineStillServesFull) {
  auto core = *ServingCore::Create(ServeData(), SmallOptions());
  RenderRequest request;
  request.deadline_seconds = 30.0;
  const auto response = core->Handle(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->fidelity, Fidelity::kFull);
  EXPECT_LE(response->latency_seconds, 30.0);
}

TEST(ServingCoreTest, InfeasibleDeadlineIsShedBeforeAnyWork) {
  ServingOptions options = SmallOptions();
  options.admission.initial_latency_seconds = 1.0;  // "service takes ~1s"
  auto core = *ServingCore::Create(ServeData(), options);
  RenderRequest request;
  request.deadline_seconds = 0.02;
  const auto response = core->Handle(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsResourceExhausted());
  EXPECT_EQ(core->stats().shed, 1);
  EXPECT_EQ(core->admission_stats().shed_infeasible, 1);
}

TEST(ServingCoreTest, CallerCancellationSurfacesAndIsCounted) {
  auto core = *ServingCore::Create(ServeData(), SmallOptions());
  CancellationToken token;
  token.Cancel();
  ExecContext exec;
  exec.set_cancellation(&token);
  RenderRequest request;
  request.exec = &exec;
  const auto response = core->Handle(request);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled());
  EXPECT_EQ(core->stats().cancelled, 1);
  // A caller-cancelled request must not count against the breaker.
  EXPECT_EQ(core->breaker_state(), BreakerState::kClosed);
}

TEST(ServingCoreTest, MemoryPressureServesDegradedAndTagsIt) {
  ServingOptions options = SmallOptions();
  options.width_px = 400;
  options.height_px = 300;
  options.method = Method::kSlamBucket;
  options.degrade_mode = DegradeMode::kHalfRes;
  const PointDataset data = ServeData();
  const size_t full = EstimateAuxiliarySpaceBytes(Method::kSlamBucket,
                                                  data.size(), 400, 300);
  const size_t half = EstimateAuxiliarySpaceBytes(Method::kSlamBucket,
                                                  data.size(), 200, 150);
  ASSERT_LT(half, full);
  MemoryBudget budget((half + full) / 2);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  auto core = *ServingCore::Create(data, options);
  RenderRequest request;
  request.exec = &exec;
  const auto response = core->Handle(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->fidelity, Fidelity::kHalfRes);
  EXPECT_EQ(response->degrade_level, 1);
  EXPECT_EQ(response->map.width(), 200);
  EXPECT_EQ(core->stats().ok_degraded, 1);
  EXPECT_EQ(core->stats().ok_full, 0);
}

TEST(ServingCoreTest, BreakerOpensOnFailuresAndShedsWhenDegradeOff) {
  ServingOptions options = SmallOptions();
  options.degrade_mode = DegradeMode::kOff;
  options.retry.max_attempts = 1;
  auto core = *ServingCore::Create(ServeData(), options);

  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmProbabilistic("engine/start", 1.0,
                                    Status::IoError("injected outage"))
                  .ok());
  ExecContext exec;
  exec.set_fault_injector(&injector);
  RenderRequest faulty;
  faulty.exec = &exec;
  // min_samples failures trip the breaker (rate 4/4 >= 0.5).
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(core->Handle(faulty).status().IsIoError()) << i;
  }
  EXPECT_EQ(core->breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(core->breaker_stats().opened, 1);

  // Degradation is off: an open breaker sheds even healthy requests.
  const auto shed = core->Handle({});
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  const ServingStats stats = core->stats();
  EXPECT_EQ(stats.failed, 4);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_GE(core->breaker_stats().rejected, 1);
}

TEST(ServingCoreTest, BreakerOpenServesDegradedWhenLadderAllows) {
  ServingOptions options = SmallOptions();  // degrade: kSample, 1 halving
  options.retry.max_attempts = 1;
  auto core = *ServingCore::Create(ServeData(), options);

  FaultInjector injector;
  ASSERT_TRUE(injector
                  .ArmProbabilistic("engine/start", 1.0,
                                    Status::IoError("injected outage"))
                  .ok());
  ExecContext exec;
  exec.set_fault_injector(&injector);
  RenderRequest faulty;
  faulty.exec = &exec;
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(core->Handle(faulty).ok()) << i;
  }
  ASSERT_EQ(core->breaker_state(), BreakerState::kOpen);

  // A healthy request during the outage window is answered — degraded,
  // never at full fidelity, and honestly tagged.
  const auto response = core->Handle({});
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->fidelity, Fidelity::kFull);
  EXPECT_GE(response->degrade_level, 1);
  EXPECT_EQ(core->stats().ok_degraded, 1);
  // The request bypassed the breaker (not admitted by it), so the breaker
  // saw no outcome and stays open.
  EXPECT_EQ(core->breaker_state(), BreakerState::kOpen);
}

TEST(ServingCoreTest, ConcurrentRequestsAllServed) {
  ServingOptions options = SmallOptions();
  options.admission.max_concurrent = 4;
  options.admission.max_queue_depth = 64;
  auto core = *ServingCore::Create(ServeData(), options);
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&core, &ok] {
      for (int i = 0; i < 10; ++i) {
        RenderRequest request;
        request.deadline_seconds = 30.0;
        if (core->Handle(request).ok()) ok.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), 80);
  const ServingStats stats = core->stats();
  EXPECT_EQ(stats.requests, 80);
  EXPECT_EQ(stats.ok_full + stats.ok_degraded, 80);
}

}  // namespace
}  // namespace slam
