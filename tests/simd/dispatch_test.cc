#include "simd/dispatch.h"

#include <gtest/gtest.h>

#include "simd/sweep_ops.h"

namespace slam {
namespace {

TEST(SimdDispatchTest, NamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kAuto, SimdLevel::kScalar,
                                SimdLevel::kAvx2, SimdLevel::kNeon}) {
    const auto parsed = SimdLevelFromName(SimdLevelName(level));
    ASSERT_TRUE(parsed.ok()) << SimdLevelName(level);
    EXPECT_EQ(*parsed, level);
  }
}

TEST(SimdDispatchTest, NameParsingAliasesAndCase) {
  EXPECT_EQ(*SimdLevelFromName("none"), SimdLevel::kScalar);
  EXPECT_EQ(*SimdLevelFromName("AVX2"), SimdLevel::kAvx2);
  EXPECT_EQ(*SimdLevelFromName("Auto"), SimdLevel::kAuto);
  const auto bad = SimdLevelFromName("sse9");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(SimdLevelAvailable(SimdLevel::kScalar));
  EXPECT_TRUE(SimdLevelAvailable(SimdLevel::kAuto));
}

TEST(SimdDispatchTest, DetectReturnsConcreteAvailableLevel) {
  const SimdLevel detected = DetectSimdLevel();
  EXPECT_NE(detected, SimdLevel::kAuto);
  EXPECT_TRUE(SimdLevelAvailable(detected));
}

TEST(SimdDispatchTest, ResolveAutoMatchesDetect) {
  const auto resolved = ResolveSimdLevel(SimdLevel::kAuto);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, DetectSimdLevel());
}

TEST(SimdDispatchTest, ResolveAvailableLevelIsIdentity) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (!SimdLevelAvailable(level)) continue;
    const auto resolved = ResolveSimdLevel(level);
    ASSERT_TRUE(resolved.ok()) << SimdLevelName(level);
    EXPECT_EQ(*resolved, level);
  }
}

TEST(SimdDispatchTest, ResolveUnavailableLevelIsInvalidArgument) {
  // AVX2 and NEON are arch-exclusive, so at least one is always
  // unavailable — the pinned-level error path is testable everywhere.
  int unavailable = 0;
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelAvailable(level)) continue;
    ++unavailable;
    const auto resolved = ResolveSimdLevel(level);
    EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument)
        << SimdLevelName(level);
  }
  EXPECT_GE(unavailable, 1);
}

TEST(SimdOpsTest, TablesAreCompleteForAvailableLevels) {
  for (const SimdLevel level : {SimdLevel::kAuto, SimdLevel::kScalar,
                                SimdLevel::kAvx2, SimdLevel::kNeon}) {
    const auto ops = GetSimdOps(level);
    if (!SimdLevelAvailable(level)) {
      EXPECT_EQ(ops.status().code(), StatusCode::kInvalidArgument);
      continue;
    }
    ASSERT_TRUE(ops.ok()) << SimdLevelName(level);
    EXPECT_NE((*ops)->envelope_filter, nullptr);
    EXPECT_NE((*ops)->bound_intervals, nullptr);
    EXPECT_NE((*ops)->bucket_indices, nullptr);
    EXPECT_NE((*ops)->row_sweep, nullptr);
    if (level != SimdLevel::kAuto) {
      EXPECT_EQ((*ops)->level, level);
    }
  }
}

TEST(SimdOpsTest, ForeignArchBackendsCompileToNull) {
  // The arch-gated translation units always link; on a foreign
  // architecture the getter is non-null but returns nullptr.
#if defined(__x86_64__) || defined(__i386__)
  EXPECT_EQ(GetNeonOps(), nullptr);
#endif
#if defined(__aarch64__)
  EXPECT_EQ(GetAvx2Ops(), nullptr);
#endif
}

}  // namespace
}  // namespace slam
