// Scalar-vs-vector backend equivalence for the sweep methods (DESIGN.md
// §11). Every case renders the identical task twice — once pinned to the
// scalar reference backend, once on the best level this machine detects —
// and holds the pair to each other and to the long-double oracle at the
// repo-wide 1e-9 gate. Widths are chosen odd (31, 33) so the 4-wide AVX2
// and 2-wide NEON loops always leave a remainder tail, the classic place
// for a vectorized sweep to go wrong; the ±1e7 offsets re-run the
// adversarial-conditioning cases through both backends.
//
// On a machine with no vector backend the detected level is scalar and
// the pair comparison is trivially exact; the oracle leg still bites.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "kdv/engine.h"
#include "kdv/task.h"
#include "simd/dispatch.h"
#include "testing/oracle.h"
#include "testing/test_util.h"

namespace slam::testing {
namespace {

constexpr double kMaxRelError = 1e-9;

struct SimdCase {
  KernelType kernel;
  double offset;  // applied to both coordinates
  int width;      // odd: exercises every backend's remainder tail
  Method method;
};

std::string CaseName(const ::testing::TestParamInfo<SimdCase>& info) {
  const SimdCase& c = info.param;
  std::string name(KernelTypeName(c.kernel));
  name += c.offset == 0.0 ? "_O0"
          : c.offset > 0  ? "_OPlus1e7"
                          : "_OMinus1e7";
  name += "_W" + std::to_string(c.width) + "_";
  for (const char ch : MethodName(c.method)) {
    if (ch != '-' && ch != '_') name += ch;
  }
  return name;
}

class SimdEquivalenceTest : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdEquivalenceTest, ScalarAndVectorBackendsAgree) {
  const SimdCase& c = GetParam();
  const double extent = 512.0;
  std::vector<Point> points =
      ClusteredPoints(300, extent, /*clusters=*/4, /*seed=*/0xD15);
  for (Point& p : points) {
    p.x += c.offset;
    p.y += c.offset;
  }
  KdvTask task;
  // Odd height too, so the RAO transposition also sweeps odd-length rows.
  const Grid grid =
      MakeGrid(c.width, 21, extent).Translated(-c.offset, -c.offset);
  task.points = points;
  task.grid = grid;
  task.kernel = c.kernel;
  task.bandwidth = 60.0;
  task.weight = 1.0 / 300.0;

  EngineOptions scalar_options = ExactEngineOptions();
  scalar_options.compute.simd = SimdLevel::kScalar;
  EngineOptions vector_options = ExactEngineOptions();
  vector_options.compute.simd = DetectSimdLevel();

  const auto scalar_map = ComputeKdv(task, c.method, scalar_options);
  ASSERT_TRUE(scalar_map.ok()) << scalar_map.status().ToString();
  ASSERT_GT(scalar_map->MaxValue(), 0.0);
  const auto vector_map = ComputeKdv(task, c.method, vector_options);
  ASSERT_TRUE(vector_map.ok()) << vector_map.status().ToString();

  // Backend-vs-backend: the vector paths replay the scalar arithmetic
  // operation for operation, so the pair agrees to the last bit today;
  // the contract (and this gate) is the oracle threshold.
  const auto pair = CompareToReference(*vector_map, *scalar_map);
  ASSERT_TRUE(pair.ok());
  EXPECT_LE(pair->max_rel_error, kMaxRelError)
      << SimdLevelName(DetectSimdLevel()) << " vs scalar: rel "
      << pair->max_rel_error << " at (" << pair->worst_ix << ", "
      << pair->worst_iy << "), got " << pair->worst_value << " expected "
      << pair->worst_reference;

  // Both backends against ground truth.
  const auto reference = ReferenceScan(task);
  ASSERT_TRUE(reference.ok());
  for (const auto* map : {&*scalar_map, &*vector_map}) {
    const auto report = CompareToReference(*map, *reference);
    ASSERT_TRUE(report.ok());
    EXPECT_LE(report->max_rel_error, kMaxRelError);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsOffsetsWidthsMethods, SimdEquivalenceTest,
    ::testing::Values(
        // Every kernel arity (1/4/10 SoA channels) through both sweep
        // methods at both tail widths, well-conditioned.
        SimdCase{KernelType::kUniform, 0.0, 33, Method::kSlamSort},
        SimdCase{KernelType::kUniform, 0.0, 31, Method::kSlamBucket},
        SimdCase{KernelType::kEpanechnikov, 0.0, 33, Method::kSlamSort},
        SimdCase{KernelType::kEpanechnikov, 0.0, 31, Method::kSlamBucket},
        SimdCase{KernelType::kQuartic, 0.0, 33, Method::kSlamSort},
        SimdCase{KernelType::kQuartic, 0.0, 31, Method::kSlamBucket},
        // Adversarial ±1e7 offsets (EPSG:3857 magnitudes).
        SimdCase{KernelType::kEpanechnikov, 1e7, 31, Method::kSlamSort},
        SimdCase{KernelType::kEpanechnikov, -1e7, 33, Method::kSlamBucket},
        SimdCase{KernelType::kQuartic, 1e7, 33, Method::kSlamBucket},
        SimdCase{KernelType::kQuartic, -1e7, 31, Method::kSlamSort},
        SimdCase{KernelType::kUniform, 1e7, 31, Method::kSlamBucket},
        // RAO wrappers: the transposed sweep runs 21-pixel rows.
        SimdCase{KernelType::kEpanechnikov, 0.0, 33, Method::kSlamSortRao},
        SimdCase{KernelType::kQuartic, -1e7, 31, Method::kSlamBucketRao}),
    CaseName);

TEST(SimdEquivalenceTest, UncompensatedPathsAgreeToo) {
  // The plain-summation variant dispatches to different accumulate code in
  // every backend; cover it once per kernel.
  const double extent = 512.0;
  std::vector<Point> points =
      ClusteredPoints(250, extent, /*clusters=*/3, /*seed=*/0xFAB);
  KdvTask task;
  const Grid grid = MakeGrid(33, 9, extent);
  task.points = points;
  task.grid = grid;
  task.bandwidth = 75.0;
  task.weight = 1.0 / 250.0;
  for (const KernelType kernel :
       {KernelType::kUniform, KernelType::kEpanechnikov,
        KernelType::kQuartic}) {
    task.kernel = kernel;
    EngineOptions scalar_options = ExactEngineOptions();
    scalar_options.compute.simd = SimdLevel::kScalar;
    scalar_options.compute.compensated_aggregates = false;
    EngineOptions vector_options = scalar_options;
    vector_options.compute.simd = DetectSimdLevel();
    const auto scalar_map = ComputeKdv(task, Method::kSlamBucket,
                                       scalar_options);
    ASSERT_TRUE(scalar_map.ok());
    const auto vector_map = ComputeKdv(task, Method::kSlamBucket,
                                       vector_options);
    ASSERT_TRUE(vector_map.ok());
    const auto pair = CompareToReference(*vector_map, *scalar_map);
    ASSERT_TRUE(pair.ok());
    EXPECT_LE(pair->max_rel_error, kMaxRelError) << KernelTypeName(kernel);
  }
}

TEST(SimdEquivalenceTest, PinnedUnavailableLevelFailsTheCompute) {
  const double extent = 100.0;
  std::vector<Point> points = RandomPoints(20, extent, /*seed=*/5);
  KdvTask task;
  const Grid grid = MakeGrid(8, 8, extent);
  task.points = points;
  task.grid = grid;
  task.bandwidth = 25.0;
  task.weight = 1.0;
  for (const SimdLevel level : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelAvailable(level)) continue;
    EngineOptions options;
    options.compute.simd = level;
    const auto result = ComputeKdv(task, Method::kSlamSort, options);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << SimdLevelName(level);
  }
}

}  // namespace
}  // namespace slam::testing
