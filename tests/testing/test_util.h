// Shared helpers for the gtest suite: random task generation, brute-force
// reference densities, and raster comparison.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "geom/point.h"
#include "kdv/density_map.h"
#include "kdv/grid.h"
#include "kdv/kernel.h"
#include "kdv/task.h"
#include "util/random.h"

namespace slam::testing {

/// n uniform points in [0, extent] x [0, extent].
inline std::vector<Point> RandomPoints(size_t n, double extent,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)});
  }
  return pts;
}

/// Clustered points: most tests are more interesting with hotspots.
inline std::vector<Point> ClusteredPoints(size_t n, double extent,
                                          int clusters, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> centers;
  for (int c = 0; c < clusters; ++c) {
    centers.push_back({rng.Uniform(0.0, extent), rng.Uniform(0.0, extent)});
  }
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.NextBelow(centers.size())];
    pts.push_back({rng.Gaussian(c.x, extent / 20.0),
                   rng.Gaussian(c.y, extent / 20.0)});
  }
  return pts;
}

/// A grid of `width` x `height` pixel centers covering [0, extent]^2.
inline Grid MakeGrid(int width, int height, double extent) {
  const double gx = extent / width;
  const double gy = extent / height;
  return Grid::Create(GridAxis{0.5 * gx, gx, width},
                      GridAxis{0.5 * gy, gy, height})
      .ValueOrDie();
}

/// O(XYn) reference density, computed without any library method beyond
/// EvaluateKernel — the oracle for every equivalence test.
inline DensityMap BruteForceDensity(const KdvTask& task) {
  DensityMap map =
      DensityMap::Create(task.grid.width(), task.grid.height()).ValueOrDie();
  for (int iy = 0; iy < task.grid.height(); ++iy) {
    for (int ix = 0; ix < task.grid.width(); ++ix) {
      const Point q = task.grid.PixelCenter(ix, iy);
      double sum = 0.0;
      for (const Point& p : task.points) {
        sum += EvaluateKernel(task.kernel, SquaredDistance(q, p),
                              task.bandwidth);
      }
      map.set(ix, iy, task.weight * sum);
    }
  }
  return map;
}

/// Asserts element-wise closeness with an absolute-plus-relative tolerance.
inline void ExpectMapsNear(const DensityMap& expected,
                           const DensityMap& actual, double tolerance,
                           const char* label = "") {
  ASSERT_EQ(expected.width(), actual.width()) << label;
  ASSERT_EQ(expected.height(), actual.height()) << label;
  const double scale = std::max(1.0, expected.MaxValue());
  for (int y = 0; y < expected.height(); ++y) {
    for (int x = 0; x < expected.width(); ++x) {
      ASSERT_NEAR(expected.at(x, y), actual.at(x, y), tolerance * scale)
          << label << " mismatch at pixel (" << x << ", " << y << ")";
    }
  }
}

}  // namespace slam::testing
