// End-to-end tests of the slam_kdv and slam_load CLI binaries, run as
// subprocesses. The binary paths are injected by CMake via SLAM_CLI_PATH
// and SLAM_LOAD_PATH.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

namespace slam {
namespace {

#ifndef SLAM_CLI_PATH
#error "SLAM_CLI_PATH must be defined by the build"
#endif
#ifndef SLAM_LOAD_PATH
#error "SLAM_LOAD_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunBinary(const std::string& binary, const std::string& args) {
  const std::string command = binary + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t read;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CommandResult RunCli(const std::string& args) {
  return RunBinary(SLAM_CLI_PATH, args);
}

CommandResult RunLoad(const std::string& args) {
  return RunBinary(SLAM_LOAD_PATH, args);
}

// Writes a CSV whose final quoted field is truncated mid-record.
std::string WriteTruncatedCsv(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary);
  out << "x,y\n1.0,2.0\n\"3.0,4.0";  // unterminated quote, then EOF
  return path;
}

bool FileExists(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(CliTest, HelpPrintsUsageAndExitsZero) {
  const auto result = RunCli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("slam_kdv"), std::string::npos);
  EXPECT_NE(result.output.find("--method"), std::string::npos);
  EXPECT_NE(result.output.find("--bandwidth"), std::string::npos);
}

TEST(CliTest, GeneratesImageFromSyntheticCity) {
  const std::string out = ::testing::TempDir() + "/cli_city.ppm";
  const auto result = RunCli(
      "--city seattle --scale 0.001 --width 40 --height 30 --output " + out);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Scott bandwidth"), std::string::npos);
  EXPECT_NE(result.output.find("SLAM_BUCKET_RAO"), std::string::npos);
  EXPECT_TRUE(FileExists(out));
  std::remove(out.c_str());
}

TEST(CliTest, CompareModeReportsOracleAgreement) {
  const auto result = RunCli(
      "--city la --scale 0.0005 --width 24 --height 18 --compare "
      "--output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("vs SCAN oracle"), std::string::npos);
}

TEST(CliTest, HotspotsAndAsciiAndFilters) {
  const auto result = RunCli(
      "--city sf --scale 0.001 --width 32 --height 24 --filter-year 2019 "
      "--hotspots 3 --ascii --threads 2 --kernel quartic --output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("after filter"), std::string::npos);
  EXPECT_NE(result.output.find("hotspots"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  const auto result = RunCli("--definitely-not-a-flag=1");
  EXPECT_NE(result.exit_code, 0);
}

TEST(CliTest, SimdScalarPinRendersAndCompares) {
  // --simd=scalar is available on every machine; with --compare the
  // pinned-backend result is additionally held to the SCAN oracle.
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --width 20 --height 16 --simd scalar "
      "--method slam_bucket --compare --output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("vs SCAN oracle"), std::string::npos);
}

TEST(CliTest, SimdUnknownLevelIsUsageError) {
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --width 10 --height 10 --simd sse9 "
      "--output ''");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("unknown SIMD level"), std::string::npos);
}

TEST(CliTest, SimdUnavailableLevelFailsFast) {
  // AVX2 and NEON are arch-exclusive, so at least one is always
  // unavailable here; pinning it must be a hard error, not a fallback.
  for (const char* level : {"avx2", "neon"}) {
    const auto probe = RunCli(
        std::string("--city seattle --scale 0.0005 --width 10 --height 10 "
                    "--simd ") +
        level + " --method slam_sort --output ''");
    if (probe.exit_code == 0) continue;  // this one is available here
    EXPECT_EQ(probe.exit_code, 2) << level << ": " << probe.output;
    EXPECT_NE(probe.output.find("not available"), std::string::npos)
        << level << ": " << probe.output;
  }
}

TEST(CliTest, UnknownCityFails) {
  const auto result = RunCli("--city atlantis");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown city"), std::string::npos);
}

TEST(CliTest, GaussianWithSlamFailsWithExplanation) {
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --kernel gaussian --width 10 "
      "--height 10 --output ''");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("gaussian"), std::string::npos);
}

// ---- Hostile-input exit codes: clear message + exit 2, never an
// ---- unhandled-Status abort (which would exit with a signal).

TEST(CliTest, MissingInputFileExitsTwoWithMessage) {
  const auto result =
      RunCli("--input /nonexistent/no_such_file.csv --output ''");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("cannot load"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("no_such_file.csv"), std::string::npos);
}

TEST(CliTest, TruncatedCsvExitsTwoWithMessage) {
  const std::string path = WriteTruncatedCsv("cli_truncated.csv");
  const auto result = RunCli("--input " + path + " --output ''");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("cannot load"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(CliTest, TooFewPointsForScottBandwidthExitsTwo) {
  // After --sanitize drops the NaN row only one point remains; the Scott
  // bandwidth estimate needs >= 2 and must fail cleanly, not abort.
  const std::string path = ::testing::TempDir() + "/cli_one_point.csv";
  {
    std::ofstream out(path, std::ios::binary);
    out << "x,y\n10,20\n30,nan\n";
  }
  const auto result = RunCli("--input " + path + " --sanitize --output ''");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("--bandwidth"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(LoadCliTest, MissingInputFileExitsTwoWithMessage) {
  const auto result =
      RunLoad("--input /nonexistent/no_such_file.csv --clients 1 --requests 1");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("cannot load"), std::string::npos)
      << result.output;
}

TEST(LoadCliTest, TruncatedCsvExitsTwoWithMessage) {
  const std::string path = WriteTruncatedCsv("load_truncated.csv");
  const auto result =
      RunLoad("--input " + path + " --clients 1 --requests 1");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("cannot load"), std::string::npos)
      << result.output;
  std::remove(path.c_str());
}

TEST(LoadCliTest, UnknownCityExitsTwoNotAbort) {
  const auto result = RunLoad("--city atlantis --clients 1 --requests 1");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("unknown city"), std::string::npos);
}

TEST(CliTest, GaussianWithScanSucceeds) {
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --kernel gaussian --method scan "
      "--width 12 --height 9 --output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

}  // namespace
}  // namespace slam
