// End-to-end tests of the slam_kdv CLI binary, run as a subprocess.
// The binary path is injected by CMake via SLAM_CLI_PATH.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace slam {
namespace {

#ifndef SLAM_CLI_PATH
#error "SLAM_CLI_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  const std::string command = std::string(SLAM_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  size_t read;
  while ((read = fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), read);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

bool FileExists(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

TEST(CliTest, HelpPrintsUsageAndExitsZero) {
  const auto result = RunCli("--help");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("slam_kdv"), std::string::npos);
  EXPECT_NE(result.output.find("--method"), std::string::npos);
  EXPECT_NE(result.output.find("--bandwidth"), std::string::npos);
}

TEST(CliTest, GeneratesImageFromSyntheticCity) {
  const std::string out = ::testing::TempDir() + "/cli_city.ppm";
  const auto result = RunCli(
      "--city seattle --scale 0.001 --width 40 --height 30 --output " + out);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("Scott bandwidth"), std::string::npos);
  EXPECT_NE(result.output.find("SLAM_BUCKET_RAO"), std::string::npos);
  EXPECT_TRUE(FileExists(out));
  std::remove(out.c_str());
}

TEST(CliTest, CompareModeReportsOracleAgreement) {
  const auto result = RunCli(
      "--city la --scale 0.0005 --width 24 --height 18 --compare "
      "--output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("vs SCAN oracle"), std::string::npos);
}

TEST(CliTest, HotspotsAndAsciiAndFilters) {
  const auto result = RunCli(
      "--city sf --scale 0.001 --width 32 --height 24 --filter-year 2019 "
      "--hotspots 3 --ascii --threads 2 --kernel quartic --output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("after filter"), std::string::npos);
  EXPECT_NE(result.output.find("hotspots"), std::string::npos);
}

TEST(CliTest, UnknownFlagFails) {
  const auto result = RunCli("--definitely-not-a-flag=1");
  EXPECT_NE(result.exit_code, 0);
}

TEST(CliTest, UnknownCityFails) {
  const auto result = RunCli("--city atlantis");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown city"), std::string::npos);
}

TEST(CliTest, GaussianWithSlamFailsWithExplanation) {
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --kernel gaussian --width 10 "
      "--height 10 --output ''");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("gaussian"), std::string::npos);
}

TEST(CliTest, GaussianWithScanSucceeds) {
  const auto result = RunCli(
      "--city seattle --scale 0.0005 --kernel gaussian --method scan "
      "--width 12 --height 9 --output ''");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

}  // namespace
}  // namespace slam
