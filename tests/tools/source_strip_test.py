"""Unit tests for scripts/source_strip.py — the comment/string stripper
behind lint_invariants.py.

The regression class that motivated the shared module: rules matching
inside block comments, raw string literals, and code hidden by a
mis-lexed digit separator. Run directly or via ctest (source_strip_test).
"""

from __future__ import annotations

import sys
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent / "scripts"))

from source_strip import strip_comments_and_strings  # noqa: E402


class StripTest(unittest.TestCase):
    def assert_stripped(self, source: str, *, keeps: list[str] = (),
                        drops: list[str] = ()):
        stripped = strip_comments_and_strings(source)
        self.assertEqual(len(stripped), len(source),
                         "stripping must preserve byte offsets")
        self.assertEqual(stripped.count("\n"), source.count("\n"),
                         "stripping must preserve line structure")
        for needle in keeps:
            self.assertIn(needle, stripped)
        for needle in drops:
            self.assertNotIn(needle, stripped)

    def test_line_comment(self):
        self.assert_stripped("int x;  // calls rand() here\n",
                             keeps=["int x;"], drops=["rand()"])

    def test_block_comment_single_line(self):
        self.assert_stripped("int /* rand() */ x;\n",
                             keeps=["int", "x;"], drops=["rand()"])

    def test_block_comment_multi_line(self):
        src = "a();\n/* std::sort(v.begin(), v.end());\n   more */\nb();\n"
        self.assert_stripped(src, keeps=["a();", "b();"], drops=["std::sort"])

    def test_string_literal(self):
        self.assert_stripped('Log("calling rand() now");\n',
                             keeps=["Log("], drops=["rand()"])

    def test_escaped_quote_in_string(self):
        self.assert_stripped('s = "he said \\"rand()\\"";  f();\n',
                             keeps=["f();"], drops=["rand()"])

    def test_comment_markers_inside_string(self):
        # A // inside a string must not comment out the rest of the line.
        self.assert_stripped('url = "http://x";  srand(7);\n',
                             keeps=["srand(7);"], drops=["http"])

    def test_raw_string_literal(self):
        # The naive scanner ended the literal at the first inner quote and
        # resumed "inside" the string, leaking its tail as code.
        src = 'const char* re = R"(he said "call rand please" loudly)";  g();\n'
        self.assert_stripped(src, keeps=["g();"], drops=["rand", "loudly"])

    def test_raw_string_with_delimiter(self):
        src = 'auto s = R"delim(contains )" and rand())delim";  h();\n'
        self.assert_stripped(src, keeps=["h();"], drops=["rand()"])

    def test_multiline_raw_string(self):
        src = 'auto q = R"(line one rand()\nline two srand())";\nk();\n'
        self.assert_stripped(src, keeps=["k();"], drops=["rand", "srand"])

    def test_identifier_ending_in_r_is_not_raw_prefix(self):
        # FOOR"..." : the R belongs to the identifier, the string is plain.
        self.assert_stripped('x = FOOR"text rand()";  m();\n',
                             keeps=["FOOR", "m();"], drops=["rand()"])

    def test_digit_separator_is_not_char_literal(self):
        # 1'000'000: the naive scanner opened a char literal at the first
        # apostrophe and swallowed real code until the next one.
        self.assert_stripped("const size_t n = 1'000'000;  srand(n);\n",
                             keeps=["1'000'000", "srand(n);"])

    def test_hex_digit_separator(self):
        self.assert_stripped("int mask = 0x7f'ff;  p();\n",
                             keeps=["0x7f'ff", "p();"])

    def test_char_literal_still_stripped(self):
        self.assert_stripped("if (c == 'r') q(); // rand() in comment\n",
                             keeps=["if (c ==", "q();"], drops=["rand()"])

    def test_escaped_char_literal(self):
        self.assert_stripped("char c = '\\'';  r();\n", keeps=["r();"])

    def test_unterminated_block_comment(self):
        self.assert_stripped("ok();\n/* rand() never closed\n",
                             keeps=["ok();"], drops=["rand()"])

    def test_unterminated_string_stops_at_newline(self):
        # A lexically broken file must not swallow subsequent lines.
        self.assert_stripped('bad = "unterminated rand()\nnext_line();\n',
                             keeps=["next_line();"], drops=["rand()"])

    def test_line_numbers_stable_through_block_comment(self):
        src = "a\n/* one\ntwo\nthree */\nsrand(1);\n"
        stripped = strip_comments_and_strings(src)
        self.assertEqual(stripped.splitlines()[4], "srand(1);")


if __name__ == "__main__":
    unittest.main()
