#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace slam {
namespace {

TEST(ParseCsvRecordTest, PlainFields) {
  const auto fields = *ParseCsvRecord("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvRecordTest, QuotedFieldWithDelimiter) {
  const auto fields = *ParseCsvRecord("\"x,y\",z", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "z");
}

TEST(ParseCsvRecordTest, EscapedQuotes) {
  const auto fields = *ParseCsvRecord("\"say \"\"hi\"\"\",b", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvRecordTest, EmptyFields) {
  const auto fields = *ParseCsvRecord(",,", ',');
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_EQ(f, "");
}

TEST(ParseCsvRecordTest, ToleratesTrailingCr) {
  const auto fields = *ParseCsvRecord("a,b\r", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsvRecordTest, AlternateDelimiter) {
  const auto fields = *ParseCsvRecord("a;b;c", ';');
  EXPECT_EQ(fields.size(), 3u);
}

TEST(ParseCsvRecordTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvRecord("\"open", ',').ok());
}

TEST(ParseCsvRecordTest, RejectsMidFieldQuote) {
  EXPECT_FALSE(ParseCsvRecord("ab\"c\",d", ',').ok());
}

TEST(ReadCsvStreamTest, HeaderAndRows) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  const Status st = ReadCsvStream(
      in, CsvOptions{},
      [&](const std::vector<std::string>& h) {
        header = h;
        return Status::OK();
      },
      [&](int64_t, const std::vector<std::string>& r) {
        rows.push_back(r);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(header.size(), 2u);
  EXPECT_EQ(header[0], "x");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "4");
}

TEST(ReadCsvStreamTest, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  int rows = 0;
  const Status st = ReadCsvStream(
      in, CsvOptions{.delimiter = ',', .has_header = false}, nullptr,
      [&](int64_t index, const std::vector<std::string>&) {
        EXPECT_EQ(index, rows);
        ++rows;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(rows, 2);
}

TEST(ReadCsvStreamTest, SkipsBlankLines) {
  std::istringstream in("x\n\n1\n\n2\n");
  int rows = 0;
  ASSERT_TRUE(ReadCsvStream(in, CsvOptions{}, nullptr,
                            [&](int64_t, const std::vector<std::string>&) {
                              ++rows;
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(rows, 2);
}

TEST(ReadCsvStreamTest, RowCallbackErrorStops) {
  std::istringstream in("x\n1\n2\n3\n");
  int rows = 0;
  const Status st = ReadCsvStream(
      in, CsvOptions{}, nullptr,
      [&](int64_t, const std::vector<std::string>&) -> Status {
        if (++rows == 2) return Status::Cancelled("enough");
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(rows, 2);
}

TEST(WriteCsvRecordTest, PlainAndQuoted) {
  std::ostringstream out;
  WriteCsvRecord(out, {"a", "b,c", "d\"e", "f\ng"});
  EXPECT_EQ(out.str(), "a,\"b,c\",\"d\"\"e\",\"f\ng\"\n");
}

TEST(CsvRoundTripTest, WriteThenParse) {
  std::ostringstream out;
  const std::vector<std::string> original{"plain", "with,comma",
                                          "with\"quote", ""};
  WriteCsvRecord(out, original);
  std::string line = out.str();
  line.pop_back();  // strip trailing newline
  const auto parsed = *ParseCsvRecord(line, ',');
  EXPECT_EQ(parsed, original);
}

}  // namespace
}  // namespace slam
