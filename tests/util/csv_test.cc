#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace slam {
namespace {

TEST(ParseCsvRecordTest, PlainFields) {
  const auto fields = *ParseCsvRecord("a,b,c", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(ParseCsvRecordTest, QuotedFieldWithDelimiter) {
  const auto fields = *ParseCsvRecord("\"x,y\",z", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "x,y");
  EXPECT_EQ(fields[1], "z");
}

TEST(ParseCsvRecordTest, EscapedQuotes) {
  const auto fields = *ParseCsvRecord("\"say \"\"hi\"\"\",b", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "say \"hi\"");
}

TEST(ParseCsvRecordTest, EmptyFields) {
  const auto fields = *ParseCsvRecord(",,", ',');
  ASSERT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_EQ(f, "");
}

TEST(ParseCsvRecordTest, ToleratesTrailingCr) {
  const auto fields = *ParseCsvRecord("a,b\r", ',');
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[1], "b");
}

TEST(ParseCsvRecordTest, AlternateDelimiter) {
  const auto fields = *ParseCsvRecord("a;b;c", ';');
  EXPECT_EQ(fields.size(), 3u);
}

TEST(ParseCsvRecordTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsvRecord("\"open", ',').ok());
}

TEST(ParseCsvRecordTest, RejectsMidFieldQuote) {
  EXPECT_FALSE(ParseCsvRecord("ab\"c\",d", ',').ok());
}

TEST(ReadCsvStreamTest, HeaderAndRows) {
  std::istringstream in("x,y\n1,2\n3,4\n");
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
  const Status st = ReadCsvStream(
      in, CsvOptions{},
      [&](const std::vector<std::string>& h) {
        header = h;
        return Status::OK();
      },
      [&](int64_t, const std::vector<std::string>& r) {
        rows.push_back(r);
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(header.size(), 2u);
  EXPECT_EQ(header[0], "x");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "4");
}

TEST(ReadCsvStreamTest, NoHeaderMode) {
  std::istringstream in("1,2\n3,4\n");
  int rows = 0;
  const Status st = ReadCsvStream(
      in, CsvOptions{.delimiter = ',', .has_header = false}, nullptr,
      [&](int64_t line, const std::vector<std::string>&) {
        // The callback receives the 1-based physical line number.
        EXPECT_EQ(line, rows + 1);
        ++rows;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(rows, 2);
}

TEST(ReadCsvStreamTest, SkipsBlankLines) {
  std::istringstream in("x\n\n1\n\n2\n");
  int rows = 0;
  ASSERT_TRUE(ReadCsvStream(in, CsvOptions{}, nullptr,
                            [&](int64_t, const std::vector<std::string>&) {
                              ++rows;
                              return Status::OK();
                            })
                  .ok());
  EXPECT_EQ(rows, 2);
}

TEST(ReadCsvStreamTest, RowCallbackErrorStops) {
  std::istringstream in("x\n1\n2\n3\n");
  int rows = 0;
  const Status st = ReadCsvStream(
      in, CsvOptions{}, nullptr,
      [&](int64_t, const std::vector<std::string>&) -> Status {
        if (++rows == 2) return Status::Cancelled("enough");
        return Status::OK();
      });
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_EQ(rows, 2);
}

// --- Hostile-input hardening (the fuzz targets hunt for gaps here) ---

TEST(ParseCsvRecordTest, RejectsEmbeddedNul) {
  const std::string_view line("a,b\0c,d", 7);
  const auto result = ParseCsvRecord(line, CsvOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_NE(result.status().message().find("NUL"), std::string::npos);
}

TEST(ParseCsvRecordTest, RejectsOverlongField) {
  CsvOptions options;
  options.max_field_bytes = 8;
  const auto result =
      ParseCsvRecord("short,waytoolongforthecap", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ParseCsvRecordTest, RejectsTooManyFields) {
  CsvOptions options;
  options.max_fields = 3;
  EXPECT_TRUE(ParseCsvRecord("a,b,c", options).ok());
  EXPECT_FALSE(ParseCsvRecord("a,b,c,d", options).ok());
}

TEST(ParseCsvRecordTest, RejectsOverlongRecord) {
  CsvOptions options;
  options.max_record_bytes = 16;
  const auto result = ParseCsvRecord("aaaa,bbbb,cccc,dddd,eeee", options);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ParseCsvRecordTest, UnterminatedQuoteMentionsTruncation) {
  const auto result = ParseCsvRecord("\"open", CsvOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
}

TEST(ReadCsvStreamTest, StripsUtf8Bom) {
  std::istringstream in("\xEF\xBB\xBFx,y\n1,2\n");
  std::vector<std::string> header;
  const Status st = ReadCsvStream(
      in, CsvOptions{},
      [&](const std::vector<std::string>& h) {
        header = h;
        return Status::OK();
      },
      [](int64_t, const std::vector<std::string>&) { return Status::OK(); });
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(header.size(), 2u);
  // Without BOM stripping the first header field would be "\xEF\xBB\xBFx"
  // and the column match would silently fail.
  EXPECT_EQ(header[0], "x");
}

TEST(ReadCsvStreamTest, CrlfLineEndings) {
  std::istringstream in("x,y\r\n1,2\r\n3,4\r\n");
  int rows = 0;
  std::vector<std::string> last;
  const Status st = ReadCsvStream(
      in, CsvOptions{}, nullptr,
      [&](int64_t, const std::vector<std::string>& r) {
        ++rows;
        last = r;
        return Status::OK();
      });
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(rows, 2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[1], "4");  // no trailing \r in the field
}

TEST(ReadCsvStreamTest, ErrorsCarryPhysicalLineNumbers) {
  // Record with an embedded NUL on file line 3.
  std::string data = "x,y\n1,2\nbad";
  data.push_back('\0');
  data += ",9\n";
  std::istringstream in(data);
  const Status st = ReadCsvStream(
      in, CsvOptions{}, nullptr,
      [](int64_t, const std::vector<std::string>&) { return Status::OK(); });
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos) << st.ToString();
}

TEST(WriteCsvRecordTest, PlainAndQuoted) {
  std::ostringstream out;
  WriteCsvRecord(out, {"a", "b,c", "d\"e", "f\ng"});
  EXPECT_EQ(out.str(), "a,\"b,c\",\"d\"\"e\",\"f\ng\"\n");
}

TEST(CsvRoundTripTest, WriteThenParse) {
  std::ostringstream out;
  const std::vector<std::string> original{"plain", "with,comma",
                                          "with\"quote", ""};
  WriteCsvRecord(out, original);
  std::string line = out.str();
  line.pop_back();  // strip trailing newline
  const auto parsed = *ParseCsvRecord(line, ',');
  EXPECT_EQ(parsed, original);
}

}  // namespace
}  // namespace slam
