#include "util/exec_context.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace slam {
namespace {

TEST(CancellationTokenTest, StickyCancel) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, ChildSeesParentCancellation) {
  CancellationToken parent;
  CancellationToken child(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(parent.cancelled());
}

TEST(CancellationTokenTest, ChildCancelDoesNotPropagateUp) {
  CancellationToken parent;
  CancellationToken child(&parent);
  child.Cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(MemoryBudgetTest, ChargeReleaseAndPeak) {
  MemoryBudget budget(1000);
  EXPECT_EQ(budget.limit_bytes(), 1000u);
  EXPECT_TRUE(budget.TryCharge(600));
  EXPECT_EQ(budget.used_bytes(), 600u);
  EXPECT_FALSE(budget.TryCharge(500));  // would exceed
  EXPECT_EQ(budget.used_bytes(), 600u);  // failed charge left no residue
  EXPECT_TRUE(budget.TryCharge(400));
  EXPECT_EQ(budget.used_bytes(), 1000u);
  budget.Release(700);
  EXPECT_EQ(budget.used_bytes(), 300u);
  EXPECT_EQ(budget.peak_bytes(), 1000u);  // peak survives the release
  EXPECT_TRUE(budget.WouldFit(700));
  EXPECT_FALSE(budget.WouldFit(701));
}

TEST(MemoryBudgetTest, ConcurrentChargesNeverExceedLimit) {
  MemoryBudget budget(64 * 100);  // room for exactly 100 charges of 64
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &granted] {
      for (int i = 0; i < 50; ++i) {
        if (budget.TryCharge(64)) granted.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), 100);
  EXPECT_EQ(budget.used_bytes(), 64u * 100);
  EXPECT_LE(budget.peak_bytes(), budget.limit_bytes());
}

TEST(FaultInjectorTest, TripsAfterArmedHitsAndIsSticky) {
  FaultInjector injector;
  injector.Arm("site/a", 2, Status::IoError("injected"));
  EXPECT_TRUE(injector.Hit("site/a").ok());
  EXPECT_TRUE(injector.Hit("site/a").ok());
  const Status tripped = injector.Hit("site/a");
  EXPECT_EQ(tripped.code(), StatusCode::kIoError);
  // Sticky: stays tripped on further hits.
  EXPECT_EQ(injector.Hit("site/a").code(), StatusCode::kIoError);
  EXPECT_EQ(injector.HitCount("site/a"), 4);
}

TEST(FaultInjectorTest, WildcardTrapsEverySite) {
  FaultInjector injector;
  injector.Arm("*", 1, Status::Cancelled("injected"));
  EXPECT_TRUE(injector.Hit("one").ok());
  EXPECT_EQ(injector.Hit("two").code(), StatusCode::kCancelled);
  EXPECT_EQ(injector.HitCount("*"), 2);  // global total
  EXPECT_EQ(injector.HitCount("one"), 1);
  EXPECT_EQ(injector.HitCount("never-hit"), 0);
}

TEST(FaultInjectorTest, DisarmClearsTrap) {
  FaultInjector injector;
  injector.Arm("site", 0, Status::Internal("boom"));
  EXPECT_FALSE(injector.Hit("site").ok());
  injector.Disarm("site");
  EXPECT_TRUE(injector.Hit("site").ok());
}

TEST(FaultInjectorTest, ProbabilisticRejectsOutOfRangeProbability) {
  // Invalid probabilities must be a loud error, not a silent clamp: a
  // chaos suite armed with p=1.3 by a typo would otherwise quietly test
  // something different from what it claims.
  FaultInjector injector;
  Status st = injector.ArmProbabilistic("s", -0.1, Status::IoError("f"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  st = injector.ArmProbabilistic("s", 1.3, Status::IoError("f"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  st = injector.ArmProbabilistic("s", std::nan(""), Status::IoError("f"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  st = injector.ArmProbabilistic("s", 0.5, Status::OK());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // Nothing got armed along the way.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(injector.Hit("s").ok());
}

TEST(FaultInjectorTest, ProbabilisticBoundaryProbabilities) {
  FaultInjector injector;
  ASSERT_TRUE(injector.ArmProbabilistic("never", 0.0,
                                        Status::IoError("f")).ok());
  ASSERT_TRUE(injector.ArmProbabilistic("always", 1.0,
                                        Status::IoError("f")).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(injector.Hit("never").ok());
    EXPECT_EQ(injector.Hit("always").code(), StatusCode::kIoError);
  }
  EXPECT_EQ(injector.InjectedCount(), 100);
}

TEST(FaultInjectorTest, SeededProbabilisticFaultsAreDeterministic) {
  // Two injectors with the same seed must inject on exactly the same
  // hits, so a chaos failure reproduces from its logged seed.
  constexpr uint64_t kSeed = 20260808;
  constexpr int kHits = 500;
  std::vector<bool> first, second;
  for (auto* run : {&first, &second}) {
    FaultInjector injector(kSeed);
    EXPECT_EQ(injector.seed(), kSeed);
    ASSERT_TRUE(
        injector.ArmProbabilistic("s", 0.2, Status::IoError("f")).ok());
    for (int i = 0; i < kHits; ++i) run->push_back(!injector.Hit("s").ok());
  }
  EXPECT_EQ(first, second);
  const int injected =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  // ~Binomial(500, 0.2): far from both 0 and 500 with overwhelming margin.
  EXPECT_GT(injected, 50);
  EXPECT_LT(injected, 200);

  FaultInjector other(kSeed + 1);
  ASSERT_TRUE(other.ArmProbabilistic("s", 0.2, Status::IoError("f")).ok());
  std::vector<bool> different;
  for (int i = 0; i < kHits; ++i) different.push_back(!other.Hit("s").ok());
  EXPECT_NE(first, different);  // seed actually matters
}

TEST(FaultInjectorTest, ProbabilisticDisarmAndCountInteroperate) {
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmProbabilistic("s", 1.0, Status::IoError("f")).ok());
  EXPECT_FALSE(injector.Hit("s").ok());
  EXPECT_EQ(injector.InjectedCount(), 1);
  injector.Disarm("s");  // clears probabilistic traps too
  EXPECT_TRUE(injector.Hit("s").ok());
  EXPECT_EQ(injector.InjectedCount(), 1);
}

TEST(ExecContextTest, NullMembersMeanUnlimited) {
  ExecContext exec;
  EXPECT_TRUE(exec.Check("anywhere").ok());
  EXPECT_TRUE(exec.CheckBudgetFor(1u << 30, "big").ok());
  EXPECT_TRUE(exec.ChargeMemory(1u << 30, "big").ok());
  EXPECT_TRUE(ExecCheck(nullptr, "anywhere").ok());
  EXPECT_TRUE(ExecChargeMemory(nullptr, 123, "x").ok());
}

TEST(ExecContextTest, CancelledTokenSurfacesAsCancelled) {
  CancellationToken token;
  ExecContext exec;
  exec.set_cancellation(&token);
  EXPECT_TRUE(exec.Check("row").ok());
  token.Cancel();
  const Status st = exec.Check("row");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.message().find("row"), std::string::npos);
}

TEST(ExecContextTest, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
  const Deadline expired(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ExecContext exec;
  exec.set_deadline(&expired);
  EXPECT_EQ(exec.Check("row").code(), StatusCode::kDeadlineExceeded);
}

TEST(ExecContextTest, NonPositiveDeadlineIsExpiredOnArrival) {
  // "0 seconds" and negative budgets mean an already-passed deadline, not
  // "no deadline": the very first Check must fail before any work runs.
  for (const double budget : {0.0, -0.5}) {
    const Deadline expired(budget);
    ExecContext exec;
    exec.set_deadline(&expired);
    EXPECT_EQ(exec.Check("entry").code(), StatusCode::kDeadlineExceeded)
        << "budget=" << budget;
  }
}

TEST(ExecContextTest, InjectorBeatsCancellationInCheckOrder) {
  CancellationToken token;
  token.Cancel();
  FaultInjector injector;
  injector.Arm("site", 0, Status::IoError("injected first"));
  ExecContext exec;
  exec.set_cancellation(&token);
  exec.set_fault_injector(&injector);
  EXPECT_EQ(exec.Check("site").code(), StatusCode::kIoError);
}

TEST(ExecContextTest, BudgetPreflightAndCharges) {
  MemoryBudget budget(1024);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  EXPECT_TRUE(exec.CheckBudgetFor(1024, "fits").ok());
  const Status too_big = exec.CheckBudgetFor(1025, "kd-tree");
  EXPECT_EQ(too_big.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(too_big.message().find("kd-tree"), std::string::npos);

  EXPECT_TRUE(exec.ChargeMemory(1000, "workspace").ok());
  EXPECT_EQ(exec.ChargeMemory(100, "workspace").code(),
            StatusCode::kResourceExhausted);
  exec.ReleaseMemory(1000);
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(ExecContextTest, ChargeMemoryIsAnInjectionSite) {
  FaultInjector injector;
  injector.Arm("workspace", 0, Status::ResourceExhausted("injected oom"));
  ExecContext exec;  // no budget: only the injector can fail the charge
  exec.set_fault_injector(&injector);
  EXPECT_EQ(exec.ChargeMemory(16, "workspace").code(),
            StatusCode::kResourceExhausted);
}

TEST(ScopedMemoryChargeTest, UpdatesChargeDeltaAndReleasesOnDestruction) {
  MemoryBudget budget(1000);
  ExecContext exec;
  exec.set_memory_budget(&budget);
  {
    ScopedMemoryCharge charge(&exec, "workspace");
    ASSERT_TRUE(charge.Update(400).ok());
    EXPECT_EQ(budget.used_bytes(), 400u);
    ASSERT_TRUE(charge.Update(900).ok());  // grows by 500
    EXPECT_EQ(budget.used_bytes(), 900u);
    ASSERT_TRUE(charge.Update(200).ok());  // shrinks by 700
    EXPECT_EQ(budget.used_bytes(), 200u);
    // A failing grow leaves the existing charge in place.
    EXPECT_EQ(charge.Update(1200).code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(charge.charged_bytes(), 200u);
    EXPECT_EQ(budget.used_bytes(), 200u);
  }
  EXPECT_EQ(budget.used_bytes(), 0u);  // destructor released the rest
  EXPECT_EQ(budget.peak_bytes(), 900u);
}

TEST(ScopedMemoryChargeTest, NullContextIsNoop) {
  ScopedMemoryCharge charge(nullptr, "x");
  EXPECT_TRUE(charge.Update(1u << 30).ok());
  EXPECT_EQ(charge.charged_bytes(), 0u);
}

}  // namespace
}  // namespace slam
