#include "util/flags.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(FlagParserTest, ParsesEqualsAndSpaceForms) {
  std::string name = "default";
  double ratio = 1.0;
  int count = 0;
  FlagParser parser("test");
  parser.AddString("name", &name, "a name");
  parser.AddDouble("ratio", &ratio, "a ratio");
  parser.AddInt("count", &count, "a count");
  const auto argv = Argv({"--name=alpha", "--ratio", "2.5", "--count=7"});
  const auto positional =
      parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(positional.ok()) << positional.status().ToString();
  EXPECT_TRUE(positional->empty());
  EXPECT_EQ(name, "alpha");
  EXPECT_DOUBLE_EQ(ratio, 2.5);
  EXPECT_EQ(count, 7);
}

TEST(FlagParserTest, DefaultsSurviveWhenUnset) {
  std::string s = "keep";
  FlagParser parser("test");
  parser.AddString("s", &s, "");
  const auto argv = Argv({});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_EQ(s, "keep");
}

TEST(FlagParserTest, BoolForms) {
  bool a = false, b = true, c = false, d = false;
  FlagParser parser("test");
  parser.AddBool("a", &a, "");
  parser.AddBool("b", &b, "");
  parser.AddBool("c", &c, "");
  parser.AddBool("d", &d, "");
  const auto argv = Argv({"--a", "--no-b", "--c=true", "--d=false"});
  ASSERT_TRUE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
  EXPECT_FALSE(d);
}

TEST(FlagParserTest, PositionalArgumentsPassThrough) {
  int n = 0;
  FlagParser parser("test");
  parser.AddInt("n", &n, "");
  const auto argv = Argv({"file1", "--n=3", "file2"});
  const auto positional =
      parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(positional.ok());
  ASSERT_EQ(positional->size(), 2u);
  EXPECT_EQ((*positional)[0], "file1");
  EXPECT_EQ((*positional)[1], "file2");
  EXPECT_EQ(n, 3);
}

TEST(FlagParserTest, UnknownFlagIsError) {
  FlagParser parser("test");
  const auto argv = Argv({"--mystery=1"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, MissingValueIsError) {
  int n = 0;
  FlagParser parser("test");
  parser.AddInt("n", &n, "");
  const auto argv = Argv({"--n"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, BadNumericValueIsError) {
  double d = 0;
  int64_t i = 0;
  FlagParser parser("test");
  parser.AddDouble("d", &d, "");
  parser.AddInt64("i", &i, "");
  {
    const auto argv = Argv({"--d=abc"});
    EXPECT_FALSE(
        parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
  {
    const auto argv = Argv({"--i=1.5"});
    EXPECT_FALSE(
        parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
  }
}

TEST(FlagParserTest, IntRangeChecked) {
  int n = 0;
  FlagParser parser("test");
  parser.AddInt("n", &n, "");
  const auto argv = Argv({"--n=99999999999"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, NoNegationForNonBool) {
  int n = 0;
  FlagParser parser("test");
  parser.AddInt("n", &n, "");
  const auto argv = Argv({"--no-n"});
  EXPECT_FALSE(parser.Parse(static_cast<int>(argv.size()), argv.data()).ok());
}

TEST(FlagParserTest, HelpShortCircuits) {
  int n = 5;
  FlagParser parser("my tool");
  parser.AddInt("n", &n, "the n");
  const auto argv = Argv({"--help", "--unknown-after-help"});
  const auto positional =
      parser.Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(positional.ok());
  EXPECT_TRUE(parser.help_requested());
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("my tool"), std::string::npos);
  EXPECT_NE(usage.find("--n"), std::string::npos);
  EXPECT_NE(usage.find("default: 5"), std::string::npos);
}

TEST(FlagParserDeathTest, DuplicateFlagIsProgrammingError) {
  FlagParser parser("test");
  int a = 0, b = 0;
  parser.AddInt("x", &a, "");
  EXPECT_DEATH(parser.AddInt("x", &b, ""), "duplicate flag");
}

}  // namespace
}  // namespace slam
