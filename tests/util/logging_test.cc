#include "util/logging.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedMessageDoesNotCrash) {
  SetLogLevel(LogLevel::kFatal);
  SLAM_LOG(Info) << "this is dropped " << 123;
}

TEST_F(LoggingTest, EmittedMessageGoesToStderr) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  SLAM_LOG(Warning) << "value=" << 7;
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("WARN"), std::string::npos);
  EXPECT_NE(captured.find("value=7"), std::string::npos);
  EXPECT_NE(captured.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingDeathTest, FatalAborts) {
  EXPECT_DEATH(SLAM_LOG(Fatal) << "fatal goes boom", "fatal goes boom");
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(SLAM_CHECK(1 == 2) << "math broke", "Check failed");
}

TEST(LoggingCheckTest, CheckPassesSilently) {
  SLAM_CHECK(true);
  SLAM_CHECK_EQ(2 + 2, 4);
  SLAM_CHECK_NE(1, 2);
  SLAM_CHECK_LT(1, 2);
  SLAM_CHECK_LE(2, 2);
  SLAM_CHECK_GT(3, 2);
  SLAM_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckOpFormats) {
  EXPECT_DEATH(SLAM_CHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(SLAM_CHECK_LT(5, 2), "Check failed");
}

}  // namespace
}  // namespace slam
