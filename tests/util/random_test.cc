#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace slam {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  // n = 1 always yields 0.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, GaussianMomentsAreStandard) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);  // mean = 1/rate
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  const std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleAllIsPermutation) {
  Rng rng(31);
  const auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(RngTest, SampleZeroIsEmpty) {
  Rng rng(37);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, SampleIsApproximatelyUniform) {
  // Each index of [0, 10) should be sampled ~equally often across trials.
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    Rng rng(1000 + trial);
    for (const size_t idx : rng.SampleWithoutReplacement(10, 3)) {
      ++hits[idx];
    }
  }
  for (const int h : hits) {
    EXPECT_NEAR(h, 600, 120);  // 2000 trials * 3/10 = 600 expected
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  EXPECT_NE(rng.NextU64(), rng.NextU64());
}

}  // namespace
}  // namespace slam
