#include "util/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace slam {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ImplicitFromValueAtReturn) {
  const auto make = [](bool ok) -> Result<std::string> {
    if (!ok) return Status::InvalidArgument("no");
    return std::string("yes");
  };
  EXPECT_EQ(*make(true), "yes");
  EXPECT_FALSE(make(false).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultTest, ValueOrFallback) {
  EXPECT_EQ((Result<int>(5)).ValueOr(-1), 5);
  EXPECT_EQ((Result<int>(Status::Internal("x"))).ValueOr(-1), -1);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r(std::vector<int>{1});
  r.ValueOrDie().push_back(2);
  EXPECT_EQ(r->size(), 2u);
}

TEST(ResultDeathTest, ValueOfErrorAborts) {
  Result<int> r = Status::Internal("kaput");
  EXPECT_DEATH((void)r.ValueOrDie(), "kaput");
}

Result<int> Half(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  SLAM_ASSIGN_OR_RETURN(const int half, Half(v));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

}  // namespace
}  // namespace slam
