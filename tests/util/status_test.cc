#include "util/status.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesSetMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::InvalidArgument("x").IsNotFound());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  // Deadline expiry and user cancellation are distinct conditions: one is
  // degradable pressure, the other is final.
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsCancelled());
  EXPECT_FALSE(Status::Cancelled("x").IsDeadlineExceeded());
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  const Status a = Status::IoError("disk on fire");
  const Status b = a;  // shared state
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::IoError("a"), Status::IoError("a"));
  EXPECT_FALSE(Status::IoError("a") == Status::IoError("b"));
  EXPECT_FALSE(Status::IoError("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "Resource exhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
            "Deadline exceeded");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  const auto fails = []() -> Status {
    SLAM_RETURN_NOT_OK(Status::NotFound("inner"));
    return Status::Internal("unreachable");
  };
  EXPECT_TRUE(fails().IsNotFound());

  const auto succeeds = []() -> Status {
    SLAM_RETURN_NOT_OK(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_TRUE(succeeds().IsInternal());
}

TEST(StatusDeathTest, AbortIfNotOkAbortsOnError) {
  EXPECT_DEATH(Status::Internal("boom").AbortIfNotOk(), "boom");
}

TEST(StatusTest, AbortIfNotOkPassesOnOk) {
  Status::OK().AbortIfNotOk();  // must not abort
}

}  // namespace
}  // namespace slam
