#include "util/string_util.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("solo", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "solo");
}

TEST(SplitTest, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("a b"), "a b");  // interior space kept
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("", "x"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("  7 "), 7.0);  // trimmed
  EXPECT_DOUBLE_EQ(*ParseDouble("0"), 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1.5 2.5").ok());
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64(" 1000000000000 "), 1000000000000LL);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("twelve").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());  // overflow
}

TEST(FormatDurationTest, PicksUnit) {
  EXPECT_EQ(FormatDuration(2.5), "2.500 s");
  EXPECT_EQ(FormatDuration(0.0325), "32.500 ms");
  EXPECT_EQ(FormatDuration(0.0000005), "0.5 us");
}

TEST(FormatWithCommasTest, GroupsDigits) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
  EXPECT_EQ(FormatWithCommas(4333098), "4,333,098");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StringPrintf("empty"), "empty");
}

TEST(StringPrintfTest, LongOutput) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(StringPrintf("%s", long_str.c_str()).size(), 500u);
}

}  // namespace
}  // namespace slam
