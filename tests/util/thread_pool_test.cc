#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace slam {
namespace {

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1);
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(2);
  pool.Wait();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run everything queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, 1000, [&hits](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int calls = 0;
  ParallelFor(nullptr, 5, 25, [&calls](int64_t lo, int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 5);
    EXPECT_EQ(hi, 25);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  ParallelFor(&pool, 10, 10, [](int64_t, int64_t) { FAIL(); });
  ParallelFor(&pool, 10, 5, [](int64_t, int64_t) { FAIL(); });
}

TEST(ParallelForTest, SmallRangeFewerChunksThanThreads) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  ParallelFor(&pool, 0, 3, [&sum](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);  // 0 + 1 + 2
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<int64_t> values(10000);
  std::iota(values.begin(), values.end(), int64_t{1});
  std::atomic<int64_t> parallel_sum{0};
  ParallelFor(&pool, 0, static_cast<int64_t>(values.size()),
              [&](int64_t lo, int64_t hi) {
                int64_t local = 0;
                for (int64_t i = lo; i < hi; ++i) local += values[i];
                parallel_sum.fetch_add(local);
              });
  EXPECT_EQ(parallel_sum.load(), 10000LL * 10001 / 2);
}

}  // namespace
}  // namespace slam
