#include "util/timer.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>

namespace slam {
namespace {

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  Timer t;
  const double first = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.ElapsedSeconds(), first);
}

TEST(TimerTest, MeasuresSleepApproximately) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 25.0);
  EXPECT_LT(ms, 500.0);  // generous upper bound for a loaded CI box
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

TEST(TimerTest, UnitsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = t.ElapsedSeconds();
  const double ms = t.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1e3, 5.0);
  EXPECT_GT(t.ElapsedNanos(), 0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  const Deadline d = Deadline::Unlimited();
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), std::numeric_limits<double>::infinity());
}

TEST(DeadlineTest, NonPositiveBudgetIsAlreadyExpired) {
  // A zero or negative budget is a deadline that has already passed — the
  // holder must fail fast, not run unbounded ("no deadline" is expressed
  // by Unlimited() or by not attaching one).
  const Deadline zero(0.0);
  EXPECT_TRUE(zero.Expired());
  EXPECT_EQ(zero.RemainingSeconds(), 0.0);
  const Deadline neg(-1.0);
  EXPECT_TRUE(neg.Expired());
  EXPECT_EQ(neg.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, RemainingSecondsCountsDownAndClampsAtZero) {
  const Deadline d(0.01);
  EXPECT_GT(d.RemainingSeconds(), 0.0);
  EXPECT_LE(d.RemainingSeconds(), 0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  const Deadline d(0.01);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, ReportsBudget) {
  const Deadline d(3.5);
  EXPECT_DOUBLE_EQ(d.budget_seconds(), 3.5);
}

}  // namespace
}  // namespace slam
