#include "util/timer.h"

#include <gtest/gtest.h>

#include <thread>

namespace slam {
namespace {

TEST(TimerTest, ElapsedIsMonotoneNonNegative) {
  Timer t;
  const double first = t.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(t.ElapsedSeconds(), first);
}

TEST(TimerTest, MeasuresSleepApproximately) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const double ms = t.ElapsedMillis();
  EXPECT_GE(ms, 25.0);
  EXPECT_LT(ms, 500.0);  // generous upper bound for a loaded CI box
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.Reset();
  EXPECT_LT(t.ElapsedMillis(), 15.0);
}

TEST(TimerTest, UnitsAgree) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double s = t.ElapsedSeconds();
  const double ms = t.ElapsedMillis();
  EXPECT_NEAR(ms, s * 1e3, 5.0);
  EXPECT_GT(t.ElapsedNanos(), 0);
}

TEST(DeadlineTest, UnlimitedNeverExpires) {
  const Deadline d(0.0);
  EXPECT_FALSE(d.Expired());
  const Deadline neg(-1.0);
  EXPECT_FALSE(neg.Expired());
}

TEST(DeadlineTest, ExpiresAfterBudget) {
  const Deadline d(0.01);
  EXPECT_FALSE(d.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, ReportsBudget) {
  const Deadline d(3.5);
  EXPECT_DOUBLE_EQ(d.budget_seconds(), 3.5);
}

}  // namespace
}  // namespace slam
