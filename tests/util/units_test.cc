#include "util/units.h"

#include <gtest/gtest.h>

#include <type_traits>

#include "kdv/grid.h"

namespace slam {
namespace {

Grid MakeGrid(int width, int height) {
  GridAxis x{/*origin=*/10.0, /*gap=*/0.5, /*count=*/width};
  GridAxis y{/*origin=*/-3.0, /*gap=*/2.0, /*count=*/height};
  auto grid = Grid::Create(x, y);
  EXPECT_TRUE(grid.ok()) << grid.status().message();
  return *grid;
}

// --- zero-cost / layout guarantees ---------------------------------------

static_assert(std::is_trivially_copyable_v<WorldX>);
static_assert(std::is_trivially_copyable_v<PixelY>);
static_assert(sizeof(WorldX) == sizeof(double));
static_assert(sizeof(PixelX) == sizeof(int));

// Distinct spaces are distinct types; RowIndex is exactly PixelY.
static_assert(!std::is_same_v<WorldX, WorldY>);
static_assert(!std::is_same_v<PixelX, PixelY>);
static_assert(std::is_same_v<RowIndex, PixelY>);

// Construction from raw is explicit in both directions.
static_assert(!std::is_convertible_v<double, WorldX>);
static_assert(!std::is_convertible_v<WorldX, double>);
static_assert(std::is_constructible_v<WorldX, double>);

TEST(StrongUnitTest, OffsetArithmeticStaysInSpace) {
  constexpr WorldX a(5.0);
  constexpr WorldX b = a + 2.5;
  static_assert(b.value() == 7.5);
  static_assert(b - a == 2.5);  // coord − coord -> plain offset
  WorldX c = a;
  c += 1.0;
  c -= 0.5;
  EXPECT_DOUBLE_EQ(c.value(), 5.5);
}

TEST(StrongUnitTest, PixelIncrementLoopIdiom) {
  int visited = 0;
  const RowIndex rows(3);
  for (RowIndex iy(0); iy < rows; ++iy) ++visited;
  EXPECT_EQ(visited, 3);
}

TEST(StrongUnitTest, ComparisonAndEquality) {
  EXPECT_EQ(PixelX(4), PixelX(4));
  EXPECT_NE(PixelX(4), PixelX(5));
  EXPECT_LT(WorldY(-1.0), WorldY(0.0));
}

// --- checked world -> pixel conversions at the grid boundary -------------

TEST(GridUnitsTest, RoundTripAtFirstPixel) {
  const Grid g = MakeGrid(8, 5);
  const WorldX w0 = g.XCoord(PixelX(0));
  const auto back = ToPixel(w0, g);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, PixelX(0));
  const WorldY h0 = g.YCoord(PixelY(0));
  const auto backy = ToPixel(h0, g);
  ASSERT_TRUE(backy.ok());
  EXPECT_EQ(*backy, PixelY(0));
}

TEST(GridUnitsTest, RoundTripAtLastPixel) {
  const Grid g = MakeGrid(8, 5);
  const auto bx = ToPixel(g.XCoord(PixelX(7)), g);
  ASSERT_TRUE(bx.ok());
  EXPECT_EQ(bx->value(), 7);
  const auto by = ToPixel(g.YCoord(PixelY(4)), g);
  ASSERT_TRUE(by.ok());
  EXPECT_EQ(by->value(), 4);
}

TEST(GridUnitsTest, RoundTripEveryInteriorPixel) {
  const Grid g = MakeGrid(8, 5);
  for (int i = 0; i < g.width(); ++i) {
    const auto back = g.ToPixelX(g.XCoord(PixelX(i)));
    ASSERT_TRUE(back.ok()) << "pixel " << i;
    EXPECT_EQ(back->value(), i);
  }
  for (int j = 0; j < g.height(); ++j) {
    const auto back = g.ToPixelY(g.YCoord(PixelY(j)));
    ASSERT_TRUE(back.ok()) << "pixel " << j;
    EXPECT_EQ(back->value(), j);
  }
}

TEST(GridUnitsTest, NearestPixelWithinHalfGap) {
  const Grid g = MakeGrid(8, 5);
  // Just inside the half-open cell of pixel 3 on each side of its center.
  const WorldX center = g.XCoord(PixelX(3));
  const double half = g.x_axis().gap / 2.0;
  const auto lo = ToPixel(center - (half * 0.99), g);
  const auto hi = ToPixel(center + (half * 0.99), g);
  ASSERT_TRUE(lo.ok());
  ASSERT_TRUE(hi.ok());
  EXPECT_EQ(*lo, PixelX(3));
  EXPECT_EQ(*hi, PixelX(3));
}

TEST(GridUnitsTest, RejectsCoordinateOnePixelPastTheEnd) {
  const Grid g = MakeGrid(8, 5);
  // The center that pixel X would have — index 8 on an 8-wide axis — is a
  // full gap past the last center, outside every cell.
  const WorldX past(g.x_axis().Coord(8));
  const auto r = ToPixel(past, g);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange()) << r.status().message();
  const WorldY pasty(g.y_axis().Coord(5));
  EXPECT_TRUE(ToPixel(pasty, g).status().IsOutOfRange());
}

TEST(GridUnitsTest, RejectsCoordinateBeforeTheOrigin) {
  const Grid g = MakeGrid(8, 5);
  const WorldX before = g.XCoord(PixelX(0)) - g.x_axis().gap;
  EXPECT_TRUE(ToPixel(before, g).status().IsOutOfRange());
}

TEST(GridUnitsTest, TransposedGridSwapsAxesAndTypes) {
  const Grid g = MakeGrid(8, 5);
  const Grid t = g.Transposed();
  EXPECT_EQ(t.width(), 5);
  EXPECT_EQ(t.height(), 8);
  // The transposed grid's x axis carries the original y lattice.
  EXPECT_DOUBLE_EQ(t.XCoord(PixelX(2)).value(), g.YCoord(PixelY(2)).value());
}

// --- TypedLane boundary shim ---------------------------------------------

TEST(TypedLaneTest, StoreLoadRoundTripAndRawView) {
  double storage[4] = {0, 0, 0, 0};
  TypedLane<WorldX> lane(storage, 4);
  lane.Store(0, WorldX(1.5));
  lane.Store(3, WorldX(-2.0));
  EXPECT_EQ(lane.Load(0), WorldX(1.5));
  EXPECT_EQ(lane.Load(3), WorldX(-2.0));
  EXPECT_EQ(lane.raw(), storage);
  EXPECT_EQ(lane.size(), 4u);
  EXPECT_DOUBLE_EQ(storage[3], -2.0);
}

}  // namespace
}  // namespace slam
