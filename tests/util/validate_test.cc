#include "util/validate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace slam {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kSubnormal = 1e-310;  // below DBL_MIN, above 0

TEST(CheckFiniteTest, AcceptsOrdinaryValues) {
  EXPECT_TRUE(CheckFinite(0.0, "v").ok());
  EXPECT_TRUE(CheckFinite(-1e308, "v").ok());
}

TEST(CheckFiniteTest, RejectsNanAndInfNamingTheField) {
  const Status nan = CheckFinite(kNan, "bandwidth");
  ASSERT_TRUE(nan.IsInvalidArgument());
  EXPECT_NE(nan.message().find("bandwidth"), std::string::npos);
  EXPECT_TRUE(CheckFinite(kInf, "v").IsInvalidArgument());
  EXPECT_TRUE(CheckFinite(-kInf, "v").IsInvalidArgument());
}

TEST(CheckPositiveNormalTest, RejectsZeroNegativeAndNonFinite) {
  EXPECT_TRUE(CheckPositiveNormal(1.0, "w").ok());
  EXPECT_TRUE(CheckPositiveNormal(0.0, "w").IsInvalidArgument());
  EXPECT_TRUE(CheckPositiveNormal(-1.0, "w").IsInvalidArgument());
  EXPECT_TRUE(CheckPositiveNormal(kNan, "w").IsInvalidArgument());
  EXPECT_TRUE(CheckPositiveNormal(kInf, "w").IsInvalidArgument());
}

TEST(CheckPositiveNormalTest, RejectsSubnormals) {
  // The hostile case: 1e-310 passes `> 0` but its reciprocal overflows.
  ASSERT_GT(kSubnormal, 0.0);
  EXPECT_FALSE(std::isnormal(kSubnormal));
  const Status st = CheckPositiveNormal(kSubnormal, "bandwidth");
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("subnormal"), std::string::npos);
  // Smallest normal double is fine.
  EXPECT_TRUE(
      CheckPositiveNormal(std::numeric_limits<double>::min(), "w").ok());
}

TEST(CheckCoordinateTest, EnforcesMagnitudeCap) {
  EXPECT_TRUE(CheckCoordinate(4.0e7, "x").ok());  // EPSG:3857 scale
  EXPECT_TRUE(CheckCoordinate(InputLimits::kMaxCoordinateMagnitude, "x").ok());
  EXPECT_TRUE(
      CheckCoordinate(-InputLimits::kMaxCoordinateMagnitude, "x").ok());
  // Finite but huge: passes isfinite, still rejected.
  EXPECT_TRUE(CheckCoordinate(1e300, "x").IsInvalidArgument());
  EXPECT_TRUE(CheckCoordinate(kNan, "x").IsInvalidArgument());
}

TEST(CheckCoordinatePairTest, ChecksBothAxes) {
  EXPECT_TRUE(CheckCoordinatePair(1.0, 2.0, "p").ok());
  EXPECT_TRUE(CheckCoordinatePair(kNan, 2.0, "p").IsInvalidArgument());
  EXPECT_TRUE(CheckCoordinatePair(1.0, 1e300, "p").IsInvalidArgument());
}

TEST(CheckGridDimsTest, RejectsNonPositiveAndPerAxisOverflow) {
  EXPECT_TRUE(CheckGridDims(512, 512).ok());
  EXPECT_TRUE(CheckGridDims(0, 5).IsInvalidArgument());
  EXPECT_TRUE(CheckGridDims(5, -1).IsInvalidArgument());
  EXPECT_TRUE(
      CheckGridDims(int64_t{1} << 31, 1).IsInvalidArgument());  // 2^31 scale
  EXPECT_TRUE(CheckGridDims(InputLimits::kMaxGridDim + 1, 1)
                  .IsInvalidArgument());
}

TEST(CheckGridDimsTest, ProductCapCatchesWhatPerAxisCapsMiss) {
  // Each axis individually legal; the product would be an 8 TiB raster.
  const int64_t dim = InputLimits::kMaxGridDim;
  const Status st = CheckGridDims(dim, dim);
  ASSERT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("cell"), std::string::npos);
  // A maximal legal raster is accepted (product exactly at the cap).
  EXPECT_TRUE(CheckGridDims(InputLimits::kMaxGridDim,
                            InputLimits::kMaxGridCells /
                                InputLimits::kMaxGridDim)
                  .ok());
}

TEST(CheckBandwidthTest, EnforcesRange) {
  EXPECT_TRUE(CheckBandwidth(1.0).ok());
  EXPECT_TRUE(CheckBandwidth(InputLimits::kMinBandwidth).ok());
  EXPECT_TRUE(CheckBandwidth(InputLimits::kMaxBandwidth).ok());
  EXPECT_TRUE(CheckBandwidth(1e-12).IsInvalidArgument());  // below min
  EXPECT_TRUE(CheckBandwidth(1e13).IsInvalidArgument());   // above max
  EXPECT_TRUE(CheckBandwidth(kSubnormal).IsInvalidArgument());
  EXPECT_TRUE(CheckBandwidth(0.0).IsInvalidArgument());
  EXPECT_TRUE(CheckBandwidth(kNan).IsInvalidArgument());
}

TEST(CheckRegionTest, RejectsEmptyInvertedAndNonFinite) {
  EXPECT_TRUE(CheckRegion(0.0, 0.0, 10.0, 5.0).ok());
  EXPECT_TRUE(CheckRegion(0.0, 0.0, 0.0, 5.0).IsInvalidArgument());  // empty x
  EXPECT_TRUE(CheckRegion(10.0, 0.0, 0.0, 5.0).IsInvalidArgument());
  EXPECT_TRUE(CheckRegion(kNan, 0.0, 10.0, 5.0).IsInvalidArgument());
  EXPECT_TRUE(CheckRegion(0.0, 0.0, kInf, 5.0).IsInvalidArgument());
}

TEST(CanonicalizeCoordinateTest, FlushesNegativeZeroAndSubnormals) {
  EXPECT_FALSE(std::signbit(CanonicalizeCoordinate(-0.0)));
  EXPECT_EQ(CanonicalizeCoordinate(-0.0), 0.0);
  EXPECT_EQ(CanonicalizeCoordinate(kSubnormal), 0.0);
  EXPECT_EQ(CanonicalizeCoordinate(-kSubnormal), 0.0);
  // Normal values (and non-finite ones) pass through unchanged.
  EXPECT_EQ(CanonicalizeCoordinate(3.25), 3.25);
  EXPECT_EQ(CanonicalizeCoordinate(-7.5), -7.5);
  EXPECT_TRUE(std::isnan(CanonicalizeCoordinate(kNan)));
}

}  // namespace
}  // namespace slam
