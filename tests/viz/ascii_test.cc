#include "viz/ascii.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace slam {
namespace {

DensityMap Gradient(int w, int h) {
  auto m = *DensityMap::Create(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      m.set(x, y, static_cast<double>(x + y));
    }
  }
  return m;
}

TEST(AsciiTest, ShapeRespectsLimits) {
  const auto m = Gradient(100, 60);
  AsciiOptions opts;
  opts.max_columns = 40;
  opts.max_rows = 12;
  const std::string art = *RenderAscii(m, opts);
  // 12 lines of 40 chars + newline each.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 12);
  EXPECT_EQ(art.size(), 12u * 41u);
}

TEST(AsciiTest, SmallMapNotUpscaled) {
  const auto m = Gradient(5, 3);
  const std::string art = *RenderAscii(m);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
}

TEST(AsciiTest, HotCornerIsDenserCharacter) {
  // Density rises toward (max x, max y); top-right of the art should use a
  // denser ramp character than the bottom-left.
  const auto m = Gradient(40, 40);
  AsciiOptions opts;
  opts.max_columns = 10;
  opts.max_rows = 10;
  opts.gamma = 1.0;
  const std::string art = *RenderAscii(m, opts);
  const std::string ramp = " .:-=+*#%@";
  const char top_right = art[9];                 // row 0 (max y), last col
  const char bottom_left = art[9 * 11];          // last row, first col
  EXPECT_GT(ramp.find(top_right), ramp.find(bottom_left));
}

TEST(AsciiTest, UniformMapRendersUniformly) {
  auto m = *DensityMap::Create(10, 10);
  for (auto& v : m.mutable_values()) v = 3.0;
  const std::string art = *RenderAscii(m);
  // Degenerate range normalizes to 0 -> all blanks.
  for (const char c : art) {
    if (c != '\n') {
      EXPECT_EQ(c, ' ');
    }
  }
}

TEST(AsciiTest, Validation) {
  const auto m = Gradient(4, 4);
  AsciiOptions opts;
  opts.max_columns = 0;
  EXPECT_FALSE(RenderAscii(m, opts).ok());
  opts = AsciiOptions{};
  opts.gamma = 0.0;
  EXPECT_FALSE(RenderAscii(m, opts).ok());
  EXPECT_FALSE(RenderAscii(DensityMap{}).ok());
}

}  // namespace
}  // namespace slam
