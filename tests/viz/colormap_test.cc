#include "viz/colormap.h"

#include <gtest/gtest.h>

namespace slam {
namespace {

TEST(ColorMapNameTest, RoundTrips) {
  for (const ColorMapType t : {ColorMapType::kHeat, ColorMapType::kGrayscale,
                               ColorMapType::kViridis}) {
    EXPECT_EQ(*ColorMapFromName(ColorMapName(t)), t);
  }
  EXPECT_EQ(*ColorMapFromName("gray"), ColorMapType::kGrayscale);
  EXPECT_FALSE(ColorMapFromName("plasma").ok());
}

TEST(MapColorTest, GrayscaleEndpoints) {
  EXPECT_EQ(MapColor(ColorMapType::kGrayscale, 0.0), (Rgb{0, 0, 0}));
  EXPECT_EQ(MapColor(ColorMapType::kGrayscale, 1.0), (Rgb{255, 255, 255}));
  EXPECT_EQ(MapColor(ColorMapType::kGrayscale, 0.5), (Rgb{128, 128, 128}));
}

TEST(MapColorTest, ClampsOutOfRange) {
  EXPECT_EQ(MapColor(ColorMapType::kGrayscale, -1.0), (Rgb{0, 0, 0}));
  EXPECT_EQ(MapColor(ColorMapType::kGrayscale, 2.0), (Rgb{255, 255, 255}));
}

TEST(MapColorTest, HeatGoesFromCoolToHot) {
  const Rgb cold = MapColor(ColorMapType::kHeat, 0.0);
  const Rgb hot = MapColor(ColorMapType::kHeat, 1.0);
  // Cold end is blue-dominant, hot end red-dominant (paper Figure 1: red =
  // hotspot).
  EXPECT_GT(cold.b, cold.r);
  EXPECT_GT(hot.r, hot.b);
}

TEST(MapColorTest, RampIsContinuous) {
  for (const ColorMapType t : {ColorMapType::kHeat, ColorMapType::kViridis}) {
    Rgb prev = MapColor(t, 0.0);
    for (double x = 0.01; x <= 1.0; x += 0.01) {
      const Rgb c = MapColor(t, x);
      EXPECT_LT(std::abs(int(c.r) - int(prev.r)), 32);
      EXPECT_LT(std::abs(int(c.g) - int(prev.g)), 32);
      EXPECT_LT(std::abs(int(c.b) - int(prev.b)), 32);
      prev = c;
    }
  }
}

TEST(NormalizerTest, LinearMapping) {
  const Normalizer n{10.0, 20.0, 1.0};
  EXPECT_DOUBLE_EQ(n.Normalize(10.0), 0.0);
  EXPECT_DOUBLE_EQ(n.Normalize(20.0), 1.0);
  EXPECT_DOUBLE_EQ(n.Normalize(15.0), 0.5);
  EXPECT_DOUBLE_EQ(n.Normalize(5.0), 0.0);    // clamped
  EXPECT_DOUBLE_EQ(n.Normalize(25.0), 1.0);   // clamped
}

TEST(NormalizerTest, GammaBoostsLowValues) {
  const Normalizer n{0.0, 1.0, 0.5};
  EXPECT_DOUBLE_EQ(n.Normalize(0.25), 0.5);  // sqrt
  EXPECT_GT(n.Normalize(0.1), 0.1);
}

TEST(NormalizerTest, DegenerateRangeIsZero) {
  const Normalizer n{5.0, 5.0, 1.0};
  EXPECT_DOUBLE_EQ(n.Normalize(5.0), 0.0);
  EXPECT_DOUBLE_EQ(n.Normalize(100.0), 0.0);
}

}  // namespace
}  // namespace slam
