#include "viz/image.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace slam {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(ImageTest, CreateValidates) {
  EXPECT_TRUE(Image::Create(4, 4).ok());
  EXPECT_FALSE(Image::Create(0, 4).ok());
  EXPECT_FALSE(Image::Create(4, -1).ok());
}

TEST(ImageTest, SetGet) {
  auto img = *Image::Create(3, 2);
  img.set(2, 1, {10, 20, 30});
  EXPECT_EQ(img.at(2, 1), (Rgb{10, 20, 30}));
  EXPECT_EQ(img.at(0, 0), (Rgb{0, 0, 0}));
}

TEST(ImageTest, PpmHeaderAndSize) {
  auto img = *Image::Create(5, 3);
  img.set(0, 0, {255, 0, 0});
  const std::string path = ::testing::TempDir() + "/img_test.ppm";
  ASSERT_TRUE(img.WritePpm(path).ok());
  const std::string data = ReadFile(path);
  EXPECT_EQ(data.substr(0, 2), "P6");
  EXPECT_NE(data.find("5 3"), std::string::npos);
  // Header + 5*3*3 bytes of pixels.
  const size_t header_end = data.find("255\n") + 4;
  EXPECT_EQ(data.size() - header_end, 45u);
  // First pixel is red.
  EXPECT_EQ(static_cast<unsigned char>(data[header_end]), 255);
  EXPECT_EQ(static_cast<unsigned char>(data[header_end + 1]), 0);
  std::remove(path.c_str());
}

TEST(ImageTest, PgmLumaOrdering) {
  auto img = *Image::Create(2, 1);
  img.set(0, 0, {255, 255, 255});  // white -> 255
  img.set(1, 0, {0, 0, 0});        // black -> 0
  const std::string path = ::testing::TempDir() + "/img_test.pgm";
  ASSERT_TRUE(img.WritePgm(path).ok());
  const std::string data = ReadFile(path);
  EXPECT_EQ(data.substr(0, 2), "P5");
  const size_t header_end = data.find("255\n") + 4;
  EXPECT_EQ(data.size() - header_end, 2u);
  EXPECT_GT(static_cast<unsigned char>(data[header_end]),
            static_cast<unsigned char>(data[header_end + 1]));
  std::remove(path.c_str());
}

TEST(ImageTest, WriteToBadPathFails) {
  const auto img = *Image::Create(2, 2);
  EXPECT_TRUE(img.WritePpm("/nonexistent/dir/x.ppm").IsIoError());
  EXPECT_TRUE(img.WritePgm("/nonexistent/dir/x.pgm").IsIoError());
}

}  // namespace
}  // namespace slam
