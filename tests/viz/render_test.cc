#include "viz/render.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace slam {
namespace {

DensityMap PeakAtTopRight() {
  auto m = *DensityMap::Create(8, 6);
  m.set(7, 5, 10.0);  // raster row 5 = max y
  return m;
}

TEST(RenderTest, ShapeMatchesMap) {
  const auto img = *RenderDensityMap(PeakAtTopRight());
  EXPECT_EQ(img.width(), 8);
  EXPECT_EQ(img.height(), 6);
}

TEST(RenderTest, FlipsVertically) {
  const auto map = PeakAtTopRight();
  RenderOptions opts;
  opts.colormap = ColorMapType::kGrayscale;
  opts.gamma = 1.0;
  const auto img = *RenderDensityMap(map, opts);
  // Max density at raster (7, 5) = geographic top; image row 0 is the top.
  EXPECT_EQ(img.at(7, 0), (Rgb{255, 255, 255}));
  EXPECT_EQ(img.at(7, 5), (Rgb{0, 0, 0}));
}

TEST(RenderTest, HotspotIsRedInHeatMap) {
  const auto img = *RenderDensityMap(PeakAtTopRight());
  const Rgb hot = img.at(7, 0);
  EXPECT_GT(hot.r, hot.b);
}

TEST(RenderTest, Validation) {
  EXPECT_FALSE(RenderDensityMap(DensityMap{}).ok());
  RenderOptions opts;
  opts.gamma = -1.0;
  EXPECT_FALSE(RenderDensityMap(PeakAtTopRight(), opts).ok());
}

TEST(RenderTest, WriteDensityPpmEndToEnd) {
  const std::string path = ::testing::TempDir() + "/render_test.ppm";
  ASSERT_TRUE(WriteDensityPpm(PeakAtTopRight(), path).ok());
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  std::string magic(2, '\0');
  in.read(magic.data(), 2);
  EXPECT_EQ(magic, "P6");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slam
