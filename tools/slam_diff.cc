// slam_diff: differential correctness gate. Renders the same KdvTask with
// every requested method and reports each one's per-pixel error against
// the long-double reference SCAN (testing/oracle.h). Exits non-zero when
// any method exceeds the relative-error threshold, so CI can run it as a
// gate on adversarially-offset datasets.
//
// Examples:
//   slam_diff --city seattle --scale 0.002
//   slam_diff --city sf --offset-x 1e7 --offset-y -1e7 --kernel all
//   slam_diff --input events.csv --methods slam_bucket_rao,quad --max-rel-error 1e-10
#include <cstdio>
#include <string>
#include <vector>

#include "data/csv_io.h"
#include "data/generators.h"
#include "explore/viewport_ops.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "simd/dispatch.h"
#include "testing/oracle.h"
#include "util/flags.h"
#include "util/string_util.h"

namespace slam {
namespace {

Result<City> CityFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "seattle") return City::kSeattle;
  if (lower == "la" || lower == "losangeles" || lower == "los-angeles") {
    return City::kLosAngeles;
  }
  if (lower == "ny" || lower == "newyork" || lower == "new-york") {
    return City::kNewYork;
  }
  if (lower == "sf" || lower == "sanfrancisco" || lower == "san-francisco") {
    return City::kSanFrancisco;
  }
  return Status::InvalidArgument("unknown city '" + name +
                                 "' (seattle, la, ny, sf)");
}

Result<std::vector<KernelType>> ParseKernels(const std::string& name) {
  if (ToLower(name) == "all") {
    // The three SLAM-decomposable kernels; Gaussian has no sweep method to
    // diff, so "all" means "all kernels every method supports".
    return std::vector<KernelType>{KernelType::kUniform,
                                   KernelType::kEpanechnikov,
                                   KernelType::kQuartic};
  }
  SLAM_ASSIGN_OR_RETURN(KernelType k, KernelTypeFromName(name));
  return std::vector<KernelType>{k};
}

Result<std::vector<Method>> ParseMethods(const std::string& list) {
  if (ToLower(list) == "all") {
    return std::vector<Method>(AllMethods().begin(), AllMethods().end());
  }
  std::vector<Method> out;
  for (const std::string_view name : Split(list, ',')) {
    SLAM_ASSIGN_OR_RETURN(Method m, MethodFromName(std::string(Trim(name))));
    out.push_back(m);
  }
  if (out.empty()) {
    return Status::InvalidArgument("--methods selected no methods");
  }
  return out;
}

int RunOrDie(int argc, char** argv) {
  std::string input, city = "seattle", methods_flag = "all";
  std::string kernel_name = "all", simd_name = "auto";
  double scale = 0.002, bandwidth = 0.0, bandwidth_scale = 1.0;
  double offset_x = 0.0, offset_y = 0.0, max_rel_error = 1e-9;
  int width = 96, height = 72;
  int64_t seed = 42;
  bool recenter = true;

  FlagParser parser(
      "slam_diff: differential correctness oracle — every method vs the "
      "long-double reference SCAN");
  parser.AddString("input", &input,
                   "CSV with x,y columns; empty = use --city synthetic data");
  parser.AddString("city", &city, "synthetic dataset: seattle, la, ny, sf");
  parser.AddDouble("scale", &scale,
                   "synthetic dataset size as a fraction of the paper's n "
                   "(keep small: the reference SCAN is O(XYn) long double)");
  parser.AddInt64("seed", &seed, "synthetic generator seed");
  parser.AddString("methods", &methods_flag,
                   "comma-separated method names, or 'all'");
  parser.AddString("kernel", &kernel_name,
                   "uniform, epanechnikov, quartic, or 'all'");
  parser.AddDouble("bandwidth", &bandwidth,
                   "bandwidth in data units; 0 = Scott's rule");
  parser.AddDouble("bandwidth-scale", &bandwidth_scale,
                   "multiplier on the chosen bandwidth");
  parser.AddInt("width", &width, "raster width in pixels");
  parser.AddInt("height", &height, "raster height in pixels");
  parser.AddDouble("offset-x", &offset_x,
                   "translate the dataset and viewport by this x offset "
                   "(adversarial conditioning, e.g. 1e7 for EPSG:3857 scale)");
  parser.AddDouble("offset-y", &offset_y, "same, y");
  parser.AddDouble("max-rel-error", &max_rel_error,
                   "failure threshold on the per-pixel relative error");
  parser.AddBool("recenter", &recenter,
                 "engine-level recentering (--no-recenter measures the raw "
                 "method conditioning)");
  parser.AddString("simd", &simd_name,
                   "sweep-method instruction-set backend: auto, scalar, "
                   "avx2, neon (pinning an unavailable one fails)");

  const auto positional = parser.Parse(argc, argv);
  positional.status().AbortIfNotOk();
  if (parser.help_requested()) {
    std::printf("%s", parser.Usage().c_str());
    return 0;
  }
  if (!positional->empty()) {
    std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                 (*positional)[0].c_str(), parser.Usage().c_str());
    return 2;
  }

  // Bad flag *values* are usage errors (exit 2); failures while loading
  // data or computing keep the repo-wide AbortIfNotOk convention.
  const auto kernels = ParseKernels(kernel_name);
  const auto methods = ParseMethods(methods_flag);
  const auto simd = SimdLevelFromName(simd_name);
  const auto which = input.empty() ? CityFromName(city) : Result<City>(City::kSeattle);
  for (const Status& status :
       {kernels.status(), methods.status(), simd.status(), which.status()}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                   parser.Usage().c_str());
      return 2;
    }
  }

  PointDataset dataset;
  if (!input.empty()) {
    auto loaded = LoadDatasetCsv(input, {});
    loaded.status().AbortIfNotOk();
    dataset = *std::move(loaded);
  } else {
    auto generated =
        GenerateCityDataset(*which, scale, static_cast<uint64_t>(seed));
    generated.status().AbortIfNotOk();
    dataset = *std::move(generated);
  }
  if (bandwidth <= 0.0) {
    const auto scott = ScottBandwidth(dataset.coords());
    scott.status().AbortIfNotOk();
    bandwidth = *scott;
  }
  bandwidth *= bandwidth_scale;
  const auto viewport = DatasetViewport(dataset, width, height);
  viewport.status().AbortIfNotOk();

  KdvTask base_task =
      MakeTask(dataset, *viewport, KernelType::kEpanechnikov, bandwidth);
  // Adversarial translation: TranslatedTask shifts by (-dx, -dy), so
  // negate to *add* the offset to every coordinate.
  const TranslatedTask offset_task(base_task, -offset_x, -offset_y);

  std::printf(
      "slam_diff: %s, n = %zu, %dx%d, b = %.4g, offset = (%.4g, %.4g), "
      "threshold max_rel_error <= %.3g\n",
      dataset.name().c_str(), dataset.size(), width, height, bandwidth,
      offset_x, offset_y, max_rel_error);
  std::printf(
      "approximate methods run in their exact configuration (full Z-order "
      "sample, zero aKDE tolerance)%s\n\n",
      recenter ? "" : "; engine recentering disabled");

  EngineOptions engine = testing::ExactEngineOptions();
  engine.recenter_coordinates = recenter;
  engine.compute.simd = *simd;
  // Fail fast (usage error) on a pinned backend this machine cannot run,
  // and record what actually executes so CI logs show which path was gated.
  const auto resolved = ResolveSimdLevel(*simd);
  if (!resolved.ok()) {
    std::fprintf(stderr, "%s\n", resolved.status().ToString().c_str());
    return 2;
  }
  std::printf("simd backend: %s\n\n",
              std::string(SimdLevelName(*resolved)).c_str());

  std::printf("%-12s  %-16s  %13s  %13s  %8s  %s\n", "kernel", "method",
              "max_rel_err", "max_abs_err", "max_ulps", "worst pixel");
  bool all_ok = true;
  for (const KernelType kernel : *kernels) {
    KdvTask task = offset_task.task();
    task.kernel = kernel;
    const auto reference = testing::ReferenceScan(task);
    reference.status().AbortIfNotOk();
    for (const Method method : *methods) {
      const auto report =
          testing::DiffAgainstReference(task, method, engine, *reference);
      if (!report.ok()) {
        std::printf("%-12s  %-16s  %s\n",
                    std::string(KernelTypeName(kernel)).c_str(),
                    std::string(MethodName(method)).c_str(),
                    report.status().ToString().c_str());
        all_ok = false;
        continue;
      }
      const bool ok = report->max_rel_error <= max_rel_error;
      all_ok = all_ok && ok;
      std::printf("%-12s  %-16s  %13.4g  %13.4g  %8lld  (%d, %d) %s\n",
                  std::string(KernelTypeName(kernel)).c_str(),
                  std::string(MethodName(method)).c_str(),
                  report->max_rel_error, report->max_abs_error,
                  static_cast<long long>(report->max_ulps), report->worst_ix,
                  report->worst_iy, ok ? "" : " <-- FAIL");
    }
  }
  std::printf("\n%s\n", all_ok ? "PASS: every method within threshold"
                               : "FAIL: threshold exceeded");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace slam

int main(int argc, char** argv) { return slam::RunOrDie(argc, argv); }
