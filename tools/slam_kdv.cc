// slam_kdv: command-line KDV generator — the tool an analyst would run on
// a municipal CSV export (or a built-in synthetic city) to produce a
// hotspot image plus a ranked hotspot table.
//
// Examples:
//   slam_kdv --city seattle --scale 0.02 --output hotspots.ppm
//   slam_kdv --input events.csv --kernel quartic --width 1280 --height 960
//   slam_kdv --city ny --filter-year 2019 --hotspots 5 --ascii
//   slam_kdv --city sf --method scan --compare   (oracle cross-check)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "analysis/hotspot.h"
#include "data/csv_io.h"
#include "data/generators.h"
#include "explore/degrade.h"
#include "explore/filter.h"
#include "explore/viewport_ops.h"
#include "serve/resilient_render.h"
#include "simd/dispatch.h"
#include "kdv/bandwidth.h"
#include "kdv/engine.h"
#include "kdv/parallel.h"
#include "testing/oracle.h"
#include "util/exec_context.h"
#include "util/flags.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "viz/ascii.h"
#include "viz/render.h"

namespace slam {
namespace {

Result<City> CityFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "seattle") return City::kSeattle;
  if (lower == "la" || lower == "losangeles" || lower == "los-angeles") {
    return City::kLosAngeles;
  }
  if (lower == "ny" || lower == "newyork" || lower == "new-york") {
    return City::kNewYork;
  }
  if (lower == "sf" || lower == "sanfrancisco" || lower == "san-francisco") {
    return City::kSanFrancisco;
  }
  return Status::InvalidArgument("unknown city '" + name +
                                 "' (seattle, la, ny, sf)");
}

int RunOrDie(int argc, char** argv) {
  std::string input, city = "seattle", method_name = "slam_bucket_rao";
  std::string kernel_name = "epanechnikov", output = "kdv.ppm";
  std::string colormap_name = "heat";
  double scale = 0.02, bandwidth = 0.0, bandwidth_scale = 1.0, gamma = 0.5;
  int width = 640, height = 480, filter_year = 0, category = -1;
  int hotspots = 0, threads = 1, retries = 1;
  double retry_backoff_ms = 10.0;
  std::string diff_reference, degrade_name = "off", simd_name = "auto";
  int64_t seed = 42, timeout_ms = 0, memory_budget_mb = 0;
  bool ascii = false, compare = false, sanitize = false, recenter = true;

  FlagParser parser(
      "slam_kdv: exact kernel density visualization via sweep line "
      "algorithms (SIGMOD 2022 reproduction)");
  parser.AddString("input", &input,
                   "CSV with x,y[,time[,category]] columns; empty = use "
                   "--city synthetic data");
  parser.AddString("city", &city, "synthetic dataset: seattle, la, ny, sf");
  parser.AddDouble("scale", &scale,
                   "synthetic dataset size as a fraction of the paper's n");
  parser.AddInt64("seed", &seed, "synthetic generator seed");
  parser.AddString("method", &method_name,
                   "scan, rqs_kd, rqs_ball, z-order, akde, quad, slam_sort, "
                   "slam_bucket, slam_sort_rao, slam_bucket_rao");
  parser.AddString("kernel", &kernel_name,
                   "uniform, epanechnikov, quartic (gaussian: non-SLAM only)");
  parser.AddDouble("bandwidth", &bandwidth,
                   "bandwidth in data units; 0 = Scott's rule");
  parser.AddDouble("bandwidth-scale", &bandwidth_scale,
                   "multiplier on the chosen bandwidth");
  parser.AddInt("width", &width, "raster width in pixels");
  parser.AddInt("height", &height, "raster height in pixels");
  parser.AddInt("filter-year", &filter_year,
                "keep only events of this calendar year (0 = all)");
  parser.AddInt("category", &category,
                "keep only this event category (-1 = all)");
  parser.AddInt("hotspots", &hotspots,
                "extract and print the top-N hotspots (0 = off)");
  parser.AddInt("threads", &threads,
                "worker threads for the row-parallel wrapper (1 = serial)");
  parser.AddString("output", &output, "output PPM path (empty = no image)");
  parser.AddString("colormap", &colormap_name, "heat, grayscale, viridis");
  parser.AddDouble("gamma", &gamma, "colormap gamma (<1 boosts hotspots)");
  parser.AddBool("ascii", &ascii, "also print an ASCII heat map");
  parser.AddBool("compare", &compare,
                 "cross-check the result against the SCAN oracle");
  parser.AddString("diff", &diff_reference,
                   "report per-pixel error against a reference: a method "
                   "name, or 'reference' for the long-double oracle SCAN");
  parser.AddBool("recenter", &recenter,
                 "shift far-from-origin tasks to a local frame before "
                 "computing (--no-recenter exposes raw conditioning)");
  parser.AddInt64("timeout-ms", &timeout_ms,
                  "abort the computation after this many milliseconds "
                  "(0 = unlimited)");
  parser.AddInt64("memory-budget-mb", &memory_budget_mb,
                  "cap on auxiliary (workspace + index) memory in MiB; "
                  "methods refuse to start or stop when exceeded "
                  "(0 = unlimited)");
  parser.AddBool("sanitize", &sanitize,
                 "drop input rows with NaN/Inf coordinates instead of "
                 "failing");
  parser.AddInt("retries", &retries,
                "engine attempts per fidelity level on transient errors "
                "(1 = no retry)");
  parser.AddDouble("retry-backoff-ms", &retry_backoff_ms,
                   "initial backoff between retries, with decorrelated "
                   "jitter and never past --timeout-ms");
  parser.AddString("degrade", &degrade_name,
                   "under deadline/memory pressure serve a reduced-fidelity "
                   "answer: off, halfres, sample");
  parser.AddString("simd", &simd_name,
                   "sweep-method instruction-set backend: auto, scalar, "
                   "avx2, neon (pinning an unavailable one fails)");

  const auto positional = parser.Parse(argc, argv);
  positional.status().AbortIfNotOk();
  if (parser.help_requested()) {
    std::printf("%s", parser.Usage().c_str());
    return 0;
  }
  if (!positional->empty()) {
    std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                 (*positional)[0].c_str(), parser.Usage().c_str());
    return 2;
  }

  // ---- Data --------------------------------------------------------
  // Exit code 2 = bad input or usage (distinct from 3 = timeout and
  // 4 = memory budget): an unreadable or malformed file is the caller's
  // problem and gets a clear message, never an unhandled-Status abort.
  PointDataset dataset;
  if (!input.empty()) {
    CsvLoadOptions load_options;
    load_options.sanitize = sanitize;
    size_t dropped = 0;
    auto loaded = LoadDatasetCsv(input, load_options, &dropped);
    if (!loaded.ok()) {
      std::fprintf(stderr, "slam_kdv: cannot load '%s': %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    dataset = *std::move(loaded);
    if (dropped > 0) {
      std::fprintf(stderr, "warning: dropped %zu row(s) with non-finite coordinates\n",
                   dropped);
    }
    if (dataset.empty()) {
      std::fprintf(stderr, "slam_kdv: '%s' contains no usable rows\n",
                   input.c_str());
      return 2;
    }
  } else {
    auto which = CityFromName(city);
    if (!which.ok()) {
      std::fprintf(stderr, "slam_kdv: %s\n",
                   which.status().message().c_str());
      return 2;
    }
    auto generated =
        GenerateCityDataset(*which, scale, static_cast<uint64_t>(seed));
    generated.status().AbortIfNotOk();
    dataset = *std::move(generated);
  }
  std::printf("dataset: %s, n = %s\n", dataset.name().c_str(),
              FormatWithCommas(static_cast<int64_t>(dataset.size())).c_str());

  EventFilter filter;
  if (filter_year > 0) {
    filter.time_begin = UnixFromDate(filter_year, 1, 1).ValueOrDie();
    filter.time_end = UnixFromDate(filter_year + 1, 1, 1).ValueOrDie() - 1;
  }
  if (category >= 0) filter.categories = {category};
  if (!filter.IsNoop()) {
    auto filtered = ApplyFilter(dataset, filter);
    filtered.status().AbortIfNotOk();
    dataset = *std::move(filtered);
    std::printf("after filter: n = %s\n",
                FormatWithCommas(static_cast<int64_t>(dataset.size())).c_str());
    if (dataset.empty()) {
      std::fprintf(stderr, "filter matched no events\n");
      return 1;
    }
  }

  // ---- Task --------------------------------------------------------
  const auto method = MethodFromName(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n", method.status().message().c_str());
    return 2;
  }
  const auto kernel = KernelTypeFromName(kernel_name);
  if (!kernel.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n", kernel.status().message().c_str());
    return 2;
  }
  if (bandwidth <= 0.0) {
    const auto scott = ScottBandwidth(dataset.coords());
    if (!scott.ok()) {
      std::fprintf(stderr,
                   "slam_kdv: cannot estimate a bandwidth for this input "
                   "(%s); pass --bandwidth explicitly\n",
                   scott.status().message().c_str());
      return 2;
    }
    bandwidth = *scott;
    std::printf("Scott bandwidth: %.2f\n", bandwidth);
  }
  bandwidth *= bandwidth_scale;
  const auto viewport = DatasetViewport(dataset, width, height);
  if (!viewport.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n",
                 viewport.status().message().c_str());
    return 2;
  }
  const KdvTask task = MakeTask(dataset, *viewport, *kernel, bandwidth);

  // ---- Compute -----------------------------------------------------
  const auto degrade_mode = DegradeModeFromName(degrade_name);
  if (!degrade_mode.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n",
                 degrade_mode.status().message().c_str());
    return 2;
  }
  if (retries < 1) {
    std::fprintf(stderr, "--retries must be >= 1\n");
    return 2;
  }
  const bool resilient = retries > 1 || *degrade_mode != DegradeMode::kOff;
  if (resilient && threads > 1) {
    std::fprintf(stderr,
                 "--retries/--degrade run the serial resilient loop and are "
                 "incompatible with --threads > 1\n");
    return 2;
  }

  const Deadline deadline(static_cast<double>(timeout_ms) / 1e3);
  MemoryBudget budget(static_cast<size_t>(memory_budget_mb) << 20);
  ExecContext exec;
  // The resilient loop layers the deadline itself (it needs to see the
  // request budget to schedule backoff and descend the ladder).
  if (timeout_ms > 0 && !resilient) exec.set_deadline(&deadline);
  if (memory_budget_mb > 0) exec.set_memory_budget(&budget);
  const auto simd = SimdLevelFromName(simd_name);
  if (!simd.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n", simd.status().message().c_str());
    return 2;
  }
  // Usage error, not an abort: a pinned backend this machine cannot run is
  // caught before any work starts (the engine would reject it anyway).
  if (const auto resolved = ResolveSimdLevel(*simd); !resolved.ok()) {
    std::fprintf(stderr, "slam_kdv: %s\n",
                 resolved.status().message().c_str());
    return 2;
  }
  EngineOptions engine;
  engine.compute.exec = &exec;
  engine.compute.simd = *simd;
  engine.sanitize = sanitize;
  engine.recenter_coordinates = recenter;

  Timer timer;
  Result<DensityMap> map = Status::Internal("unset");
  Fidelity fidelity = Fidelity::kFull;
  if (resilient) {
    ResilientRenderParams params;
    params.data = &dataset;
    params.region = viewport->region();
    params.width_px = width;
    params.height_px = height;
    params.kernel = *kernel;
    params.bandwidth = bandwidth;
    params.method = *method;
    params.engine = engine;
    params.degrade_mode = *degrade_mode;
    params.retry.max_attempts = retries;
    params.retry.backoff.initial_seconds = retry_backoff_ms / 1e3;
    params.retry.backoff.max_seconds =
        std::max(retry_backoff_ms / 1e3, 1.0);
    params.retry_seed = static_cast<uint64_t>(seed);
    auto outcome =
        RenderResilient(params, timeout_ms > 0 ? &deadline : nullptr);
    if (outcome.ok()) {
      fidelity = outcome->fidelity;
      if (outcome->degrade_level > 0 || outcome->retries > 0) {
        std::printf("resilient: served %s (ladder level %d) after %d "
                    "attempt(s), %d retr%s\n",
                    std::string(FidelityName(outcome->fidelity)).c_str(),
                    outcome->degrade_level, outcome->attempts,
                    outcome->retries, outcome->retries == 1 ? "y" : "ies");
      }
      map = std::move(outcome->map);
    } else {
      map = outcome.status();
    }
  } else if (threads > 1) {
    ParallelOptions parallel;
    parallel.num_threads = threads;
    parallel.engine = engine;
    map = ComputeKdvParallel(task, *method, parallel);
  } else {
    map = ComputeKdv(task, *method, engine);
  }
  if (!map.ok()) {
    const StatusCode code = map.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      std::fprintf(stderr, "timed out after %s: %s\n",
                   FormatDuration(timer.ElapsedSeconds()).c_str(),
                   map.status().message().c_str());
      return 3;
    }
    if (code == StatusCode::kResourceExhausted) {
      std::fprintf(stderr, "memory budget of %lld MiB too small: %s\n",
                   static_cast<long long>(memory_budget_mb),
                   map.status().message().c_str());
      return 4;
    }
  }
  map.status().AbortIfNotOk();
  std::printf("%s (%s kernel, b=%.2f, %dx%d): %s\n",
              std::string(MethodName(*method)).c_str(),
              std::string(KernelTypeName(*kernel)).c_str(), bandwidth,
              map->width(), map->height(),
              FormatDuration(timer.ElapsedSeconds()).c_str());

  // The oracle/diff/hotspot blocks below compare against the full-resolution
  // task; a degraded map has different geometry, so they are skipped.
  if (fidelity != Fidelity::kFull && (compare || !diff_reference.empty())) {
    std::fprintf(stderr,
                 "skipping --compare/--diff: the served map is degraded "
                 "(%s)\n",
                 std::string(FidelityName(fidelity)).c_str());
    compare = false;
    diff_reference.clear();
  }

  if (compare) {
    const auto oracle = ComputeKdv(task, Method::kScan);
    oracle.status().AbortIfNotOk();
    const auto cmp = oracle->CompareTo(*map);
    cmp.status().AbortIfNotOk();
    std::printf("vs SCAN oracle: max abs diff %.3g, max rel diff %.3g\n",
                cmp->max_abs_diff, cmp->max_rel_diff);
  }

  if (!diff_reference.empty()) {
    Result<DensityMap> reference = Status::Internal("unset");
    if (ToLower(diff_reference) == "reference") {
      reference = testing::ReferenceScan(task, &exec);
    } else {
      const auto ref_method = MethodFromName(diff_reference);
      ref_method.status().AbortIfNotOk();
      reference = ComputeKdv(task, *ref_method, engine);
    }
    reference.status().AbortIfNotOk();
    const auto report = testing::CompareToReference(*map, *reference);
    report.status().AbortIfNotOk();
    std::printf(
        "vs %s: max rel err %.4g, max abs err %.4g, max ulps %lld, worst "
        "pixel (%d, %d) value %.17g ref %.17g\n",
        diff_reference.c_str(), report->max_rel_error, report->max_abs_error,
        static_cast<long long>(report->max_ulps), report->worst_ix,
        report->worst_iy, report->worst_value, report->worst_reference);
  }

  // ---- Outputs -----------------------------------------------------
  if (hotspots > 0 && fidelity != Fidelity::kFull) {
    std::fprintf(stderr,
                 "skipping --hotspots: geo coordinates assume the "
                 "full-resolution grid and the served map is degraded\n");
    hotspots = 0;
  }
  if (hotspots > 0) {
    HotspotOptions hs;
    hs.relative_threshold = 0.5;
    hs.min_pixels = 4;
    hs.max_hotspots = hotspots;
    const auto found = ExtractHotspots(*map, hs);
    found.status().AbortIfNotOk();
    std::printf("\ntop %zu hotspots (>= 50%% of peak density):\n",
                found->size());
    std::printf("  rank  pixels  peak        geo peak (x, y)\n");
    for (const Hotspot& h : *found) {
      const Point geo = RasterToGeo(task.grid, h.peak_x, h.peak_y);
      std::printf("  %-4d  %-6lld  %-10.4g  (%.1f, %.1f)\n", h.id + 1,
                  static_cast<long long>(h.pixel_count), h.peak_density,
                  geo.x, geo.y);
    }
  }
  if (!output.empty()) {
    RenderOptions render;
    const auto cm = ColorMapFromName(colormap_name);
    cm.status().AbortIfNotOk();
    render.colormap = *cm;
    render.gamma = gamma;
    WriteDensityPpm(*map, output, render).AbortIfNotOk();
    std::printf("wrote %s\n", output.c_str());
  }
  if (ascii) {
    const auto art = RenderAscii(*map);
    art.status().AbortIfNotOk();
    std::printf("\n%s", art->c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slam

int main(int argc, char** argv) { return slam::RunOrDie(argc, argv); }
