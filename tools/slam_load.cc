// slam_load: closed-loop load generator for the resilient serving core.
//
// Spins up N client threads against one ServingCore; each client issues
// its requests back-to-back (closed loop), with a per-request deadline
// drawn uniformly from [--deadline-min-ms, --deadline-max-ms] and an
// optional injected fault rate on the engine's start checkpoint. Reports
// latency percentiles (p50/p95/p99 over answered requests), shed /
// retried / degraded counts and breaker transitions, and can append one
// bench-format JSON line per run for scripted sweeps.
//
// Examples:
//   slam_load --clients 8 --requests 50 --deadline-min-ms 100
//             --deadline-max-ms 500
//   slam_load --fault-rate 0.3 --degrade sample --retries 3
//             --json load.jsonl
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "data/csv_io.h"
#include "data/generators.h"
#include "explore/degrade.h"
#include "serve/serving_core.h"
#include "util/exec_context.h"
#include "util/flags.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace slam {
namespace {

Result<City> CityFromName(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "seattle") return City::kSeattle;
  if (lower == "la" || lower == "losangeles" || lower == "los-angeles") {
    return City::kLosAngeles;
  }
  if (lower == "ny" || lower == "newyork" || lower == "new-york") {
    return City::kNewYork;
  }
  if (lower == "sf" || lower == "sanfrancisco" || lower == "san-francisco") {
    return City::kSanFrancisco;
  }
  return Status::InvalidArgument("unknown city '" + name +
                                 "' (seattle, la, ny, sf)");
}

int RunOrDie(int argc, char** argv) {
  std::string city = "seattle", method_name = "slam_bucket_rao";
  std::string kernel_name = "epanechnikov", degrade_name = "halfres";
  std::string json_path, input;
  double scale = 0.005, fault_rate = 0.0;
  double deadline_min_ms = 0.0, deadline_max_ms = 0.0;
  double retry_backoff_ms = 10.0, tokens_per_second = 0.0;
  int clients = 8, requests = 25, width = 256, height = 192;
  int retries = 3, max_halvings = 2, max_concurrent = 0, queue_depth = 64;
  int64_t seed = 42;

  FlagParser parser(
      "slam_load: closed-loop load generator for the SLAM serving core "
      "(admission control, circuit breaker, retry, degradation)");
  parser.AddString("city", &city, "synthetic dataset: seattle, la, ny, sf");
  parser.AddString("input", &input,
                   "CSV dataset to serve instead of a synthetic city");
  parser.AddDouble("scale", &scale,
                   "synthetic dataset size as a fraction of the paper's n");
  parser.AddInt64("seed", &seed,
                  "seed for dataset, fault injection, and client jitter");
  parser.AddString("method", &method_name,
                   "scan, rqs_kd, rqs_ball, z-order, akde, quad, slam_sort, "
                   "slam_bucket, slam_sort_rao, slam_bucket_rao");
  parser.AddString("kernel", &kernel_name,
                   "uniform, epanechnikov, quartic (gaussian: non-SLAM only)");
  parser.AddInt("width", &width, "full-resolution raster width");
  parser.AddInt("height", &height, "full-resolution raster height");
  parser.AddInt("clients", &clients, "concurrent closed-loop client threads");
  parser.AddInt("requests", &requests, "requests issued per client");
  parser.AddDouble("deadline-min-ms", &deadline_min_ms,
                   "per-request deadline lower bound (0 = no deadline)");
  parser.AddDouble("deadline-max-ms", &deadline_max_ms,
                   "per-request deadline upper bound (0 = no deadline)");
  parser.AddDouble("fault-rate", &fault_rate,
                   "probability of an injected IO fault per engine attempt");
  parser.AddInt("retries", &retries,
                "attempts per ladder rung (1 = no retry)");
  parser.AddDouble("retry-backoff-ms", &retry_backoff_ms,
                   "initial backoff between retries (decorrelated jitter)");
  parser.AddString("degrade", &degrade_name,
                   "degradation ladder: off, halfres, sample");
  parser.AddInt("max-halvings", &max_halvings,
                "half-resolution rungs before the sampled rung");
  parser.AddInt("max-concurrent", &max_concurrent,
                "admission concurrency limit (0 = number of clients)");
  parser.AddInt("queue-depth", &queue_depth, "admission queue bound");
  parser.AddDouble("tokens-per-second", &tokens_per_second,
                   "admission token-bucket rate (0 = unlimited)");
  parser.AddString("json", &json_path,
                   "append one bench-format JSON line to this path");

  const auto positional = parser.Parse(argc, argv);
  positional.status().AbortIfNotOk();
  if (parser.help_requested()) {
    std::printf("%s", parser.Usage().c_str());
    return 0;
  }
  if (!positional->empty()) {
    std::fprintf(stderr, "unexpected positional argument '%s'\n%s",
                 (*positional)[0].c_str(), parser.Usage().c_str());
    return 2;
  }
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr, "--clients and --requests must be >= 1\n");
    return 2;
  }
  if (deadline_max_ms < deadline_min_ms) {
    std::fprintf(stderr,
                 "--deadline-max-ms must be >= --deadline-min-ms\n");
    return 2;
  }

  // ---- Core --------------------------------------------------------
  // Exit code 2 = bad input or usage: an unreadable or malformed file
  // gets a clear message, never an unhandled-Status abort.
  PointDataset dataset;
  if (!input.empty()) {
    auto loaded = LoadDatasetCsv(input, CsvLoadOptions{});
    if (!loaded.ok()) {
      std::fprintf(stderr, "slam_load: cannot load '%s': %s\n", input.c_str(),
                   loaded.status().ToString().c_str());
      return 2;
    }
    dataset = *std::move(loaded);
    if (dataset.empty()) {
      std::fprintf(stderr, "slam_load: '%s' contains no usable rows\n",
                   input.c_str());
      return 2;
    }
  } else {
    const auto which = CityFromName(city);
    if (!which.ok()) {
      std::fprintf(stderr, "slam_load: %s\n", which.status().message().c_str());
      return 2;
    }
    auto generated =
        GenerateCityDataset(*which, scale, static_cast<uint64_t>(seed));
    generated.status().AbortIfNotOk();
    dataset = *std::move(generated);
  }
  const std::string dataset_name = dataset.name();
  const size_t n_points = dataset.size();

  ServingOptions options;
  options.width_px = width;
  options.height_px = height;
  const auto kernel = KernelTypeFromName(kernel_name);
  if (!kernel.ok()) {
    std::fprintf(stderr, "slam_load: %s\n", kernel.status().message().c_str());
    return 2;
  }
  options.kernel = *kernel;
  const auto method = MethodFromName(method_name);
  if (!method.ok()) {
    std::fprintf(stderr, "slam_load: %s\n", method.status().message().c_str());
    return 2;
  }
  options.method = *method;
  const auto degrade = DegradeModeFromName(degrade_name);
  if (!degrade.ok()) {
    std::fprintf(stderr, "slam_load: %s\n", degrade.status().message().c_str());
    return 2;
  }
  options.degrade_mode = *degrade;
  options.max_halvings = max_halvings;
  options.retry.max_attempts = retries;
  options.retry.backoff.initial_seconds = retry_backoff_ms / 1e3;
  options.retry.backoff.max_seconds =
      std::max(retry_backoff_ms, 10.0 * retry_backoff_ms) / 1e3;
  options.admission.max_concurrent =
      max_concurrent > 0 ? max_concurrent : clients;
  options.admission.max_queue_depth = queue_depth;
  options.admission.tokens_per_second = tokens_per_second;
  options.seed = static_cast<uint64_t>(seed);

  auto created = ServingCore::Create(std::move(dataset), options);
  if (!created.ok()) {
    std::fprintf(stderr, "slam_load: %s\n", created.status().message().c_str());
    return 2;
  }
  auto& core = *created;

  FaultInjector injector(static_cast<uint64_t>(seed));
  if (fault_rate > 0.0) {
    injector
        .ArmProbabilistic("engine/start", fault_rate,
                          Status::IoError("slam_load injected fault"))
        .AbortIfNotOk();
  }

  std::printf(
      "slam_load: %s (n = %s), %s/%s %dx%d, %d clients x %d requests, "
      "fault rate %.2f, degrade %s, retries %d\n",
      dataset_name.c_str(),
      FormatWithCommas(static_cast<int64_t>(n_points)).c_str(),
      method_name.c_str(), kernel_name.c_str(), width, height, clients,
      requests, fault_rate, std::string(DegradeModeName(*degrade)).c_str(),
      retries);

  // ---- Drive -------------------------------------------------------
  std::mutex merge_mutex;
  std::vector<double> latencies;  // answered requests only, seconds
  std::atomic<int64_t> answered{0}, degraded_count{0}, retried_requests{0};

  const Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(static_cast<uint64_t>(seed) + 1000 + static_cast<uint64_t>(c));
      std::vector<double> local;
      local.reserve(static_cast<size_t>(requests));
      for (int i = 0; i < requests; ++i) {
        ExecContext exec;
        if (fault_rate > 0.0) exec.set_fault_injector(&injector);
        RenderRequest request;
        if (deadline_max_ms > 0.0) {
          request.deadline_seconds =
              rng.Uniform(deadline_min_ms, deadline_max_ms) / 1e3;
        }
        request.exec = &exec;
        const auto response = core->Handle(request);
        if (!response.ok()) continue;
        answered.fetch_add(1);
        if (response->fidelity != Fidelity::kFull) degraded_count.fetch_add(1);
        if (response->retries > 0) retried_requests.fetch_add(1);
        local.push_back(response->latency_seconds);
      }
      const std::lock_guard<std::mutex> lock(merge_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& thread : threads) thread.join();
  const double wall_seconds = wall.ElapsedSeconds();

  // ---- Report ------------------------------------------------------
  const ServingStats stats = core->stats();
  const BreakerStats breaker = core->breaker_stats();
  const AdmissionStats admission = core->admission_stats();
  const double p50 = bench::Percentile(latencies, 50.0) * 1e3;
  const double p95 = bench::Percentile(latencies, 95.0) * 1e3;
  const double p99 = bench::Percentile(latencies, 99.0) * 1e3;
  const int64_t total = static_cast<int64_t>(clients) * requests;

  std::printf("\n%lld requests in %s (%.1f req/s)\n",
              static_cast<long long>(total),
              FormatDuration(wall_seconds).c_str(),
              wall_seconds > 0.0 ? static_cast<double>(total) / wall_seconds
                                 : 0.0);
  std::printf("  answered        %lld (%.1f%%), %lld degraded, %lld with "
              "retries\n",
              static_cast<long long>(answered.load()),
              total > 0 ? 100.0 * static_cast<double>(answered.load()) /
                              static_cast<double>(total)
                        : 0.0,
              static_cast<long long>(degraded_count.load()),
              static_cast<long long>(retried_requests.load()));
  std::printf("  latency ms      p50 %.2f  p95 %.2f  p99 %.2f\n", p50, p95,
              p99);
  std::printf("  shed            %lld (infeasible %lld, queue full %lld)\n",
              static_cast<long long>(stats.shed),
              static_cast<long long>(admission.shed_infeasible),
              static_cast<long long>(admission.shed_queue_full));
  std::printf("  deadline missed %lld, cancelled %lld, failed %lld\n",
              static_cast<long long>(stats.deadline_exceeded),
              static_cast<long long>(stats.cancelled),
              static_cast<long long>(stats.failed));
  std::printf("  engine attempts %lld (%lld retries), injected faults %lld\n",
              static_cast<long long>(stats.attempts),
              static_cast<long long>(stats.retries),
              static_cast<long long>(injector.InjectedCount()));
  std::printf("  breaker         %s now; opened %lld, half-opened %lld, "
              "closed %lld\n",
              std::string(BreakerStateName(core->breaker_state())).c_str(),
              static_cast<long long>(breaker.opened),
              static_cast<long long>(breaker.half_opened),
              static_cast<long long>(breaker.closed));

  if (!json_path.empty()) {
    const std::string line = StringPrintf(
        "{\"experiment\":\"slam_load\",\"dataset\":\"%s\",\"method\":\"%s\","
        "\"clients\":%d,\"requests\":%lld,\"fault_rate\":%.17g,"
        "\"degrade\":\"%s\",\"retries\":%d,\"answered\":%lld,"
        "\"degraded\":%lld,\"shed\":%lld,\"deadline_exceeded\":%lld,"
        "\"failed\":%lld,\"retried_requests\":%lld,\"engine_retries\":%lld,"
        "\"p50_ms\":%.17g,\"p95_ms\":%.17g,\"p99_ms\":%.17g,"
        "\"wall_seconds\":%.17g,\"breaker_opened\":%lld,"
        "\"breaker_half_opened\":%lld,\"breaker_closed\":%lld}",
        dataset_name.c_str(), std::string(MethodName(*method)).c_str(),
        clients, static_cast<long long>(total), fault_rate,
        std::string(DegradeModeName(*degrade)).c_str(), retries,
        static_cast<long long>(answered.load()),
        static_cast<long long>(degraded_count.load()),
        static_cast<long long>(stats.shed),
        static_cast<long long>(stats.deadline_exceeded),
        static_cast<long long>(stats.failed),
        static_cast<long long>(retried_requests.load()),
        static_cast<long long>(stats.retries), p50, p95, p99, wall_seconds,
        static_cast<long long>(breaker.opened),
        static_cast<long long>(breaker.half_opened),
        static_cast<long long>(breaker.closed));
    std::FILE* file = std::fopen(json_path.c_str(), "a");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot append to %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(file, "%s\n", line.c_str());
    std::fclose(file);
    std::printf("appended JSON to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace slam

int main(int argc, char** argv) { return slam::RunOrDie(argc, argv); }
