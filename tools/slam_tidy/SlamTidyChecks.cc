#include "SlamTidyChecks.h"

#include <map>
#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/Support/raw_ostream.h"

namespace slam_tidy {

using namespace clang;                // NOLINT
using namespace clang::ast_matchers;  // NOLINT

namespace {

bool StartsWith(const std::string &s, const std::string &prefix) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

bool Contains(const std::string &s, const std::string &needle) {
  return s.find(needle) != std::string::npos;
}

bool EndsWith(const std::string &s, const std::string &suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string NormalizePath(std::string p) {
  for (char &c : p) {
    if (c == '\\') c = '/';
  }
  return p;
}

/// The path used for scope decisions (src/core/ vs src/simd/ ...): the
/// real file path, except that corpus runs substitute --assume-path for
/// the main file.
std::string EffectivePath(SourceLocation loc, const SourceManager &sm,
                          const Options &opts) {
  const SourceLocation expansion = sm.getExpansionLoc(loc);
  if (!opts.assume_path.empty() && sm.isWrittenInMainFile(expansion)) {
    return opts.assume_path;
  }
  const PresumedLoc presumed = sm.getPresumedLoc(expansion);
  if (presumed.isInvalid()) return std::string();
  return NormalizePath(presumed.getFilename());
}

/// A location is reportable when it falls inside the analysis surface:
/// the main file (corpus mode) or anywhere under --repo-root (tree mode).
/// Keeps system headers — which freely use intrinsics and narrowing —
/// out of the findings.
bool Reportable(SourceLocation loc, const SourceManager &sm,
                const Options &opts) {
  const SourceLocation expansion = sm.getExpansionLoc(loc);
  if (expansion.isInvalid()) return false;
  if (opts.repo_root.empty()) return sm.isWrittenInMainFile(expansion);
  const PresumedLoc presumed = sm.getPresumedLoc(expansion);
  if (presumed.isInvalid()) return false;
  return StartsWith(NormalizePath(presumed.getFilename()),
                    NormalizePath(opts.repo_root));
}

/// Scope helper: true when the path sits under `dir` (a repo-relative
/// directory like "src/core/"), at any absolute prefix.
bool UnderDir(const std::string &path, const std::string &dir) {
  return StartsWith(path, dir) || Contains(path, "/" + dir);
}

/// Same-line NOLINT waiver, clang-tidy style: `// NOLINT` waives every
/// check, `// NOLINT(a, b)` waives the named ones.
bool HasNolint(SourceLocation loc, const SourceManager &sm,
               const std::string &check) {
  const SourceLocation expansion = sm.getExpansionLoc(loc);
  const std::pair<FileID, unsigned> decomposed =
      sm.getDecomposedLoc(expansion);
  bool invalid = false;
  const llvm::StringRef buffer = sm.getBufferData(decomposed.first, &invalid);
  if (invalid) return false;
  size_t begin = buffer.rfind('\n', decomposed.second);
  begin = (begin == llvm::StringRef::npos) ? 0 : begin + 1;
  size_t end = buffer.find('\n', decomposed.second);
  if (end == llvm::StringRef::npos) end = buffer.size();
  const std::string line = buffer.slice(begin, end).str();
  size_t pos = line.find("NOLINT");
  while (pos != std::string::npos) {
    size_t after = pos + 6;  // strlen("NOLINT")
    if (after >= line.size() || line[after] != '(') return true;  // bare
    const size_t close = line.find(')', after);
    if (close == std::string::npos) return true;
    const std::string list = line.substr(after + 1, close - after - 1);
    size_t item = 0;
    while (item < list.size()) {
      size_t comma = list.find(',', item);
      if (comma == std::string::npos) comma = list.size();
      std::string name = list.substr(item, comma - item);
      // trim
      while (!name.empty() && name.front() == ' ') name.erase(0, 1);
      while (!name.empty() && name.back() == ' ') name.pop_back();
      if (name == check) return true;
      item = comma + 1;
    }
    pos = line.find("NOLINT", close);
  }
  return false;
}

/// Central gate every check funnels through: scope filter + NOLINT +
/// dedupe + emit.
void Emit(const MatchFinder::MatchResult &result, SourceLocation loc,
          const Options &opts, FindingCollector &collector,
          const std::string &check, const std::string &message) {
  const SourceManager &sm = *result.SourceManager;
  if (!Reportable(loc, sm, opts)) return;
  if (HasNolint(loc, sm, check)) return;
  const SourceLocation expansion = sm.getExpansionLoc(loc);
  const PresumedLoc presumed = sm.getPresumedLoc(expansion);
  if (presumed.isInvalid()) return;
  collector.Report(NormalizePath(presumed.getFilename()),
                   presumed.getLine(), presumed.getColumn(), check, message);
}

// ---------------------------------------------------------------------------
// slam-exec-context-poll
// ---------------------------------------------------------------------------

/// Scans one function body for a direct ExecContext consultation and
/// collects the callees for the transitive pass.
class PollScanner : public RecursiveASTVisitor<PollScanner> {
 public:
  bool polls = false;
  std::vector<const FunctionDecl *> callees;

  bool VisitCallExpr(CallExpr *e) {
    const FunctionDecl *callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    const std::string name = callee->getNameAsString();
    if (name == "ExecCheck" || name == "ExecChargeMemory" ||
        name == "ChargeMemory") {
      polls = true;
      return true;
    }
    if (name == "Check" || name == "Update") {
      if (const auto *method = dyn_cast<CXXMethodDecl>(callee)) {
        const std::string cls = method->getParent()->getNameAsString();
        if (cls == "ExecContext" || cls == "ScopedMemoryCharge") {
          polls = true;
          return true;
        }
      }
    }
    callees.push_back(callee);
    return true;
  }

  bool VisitCXXConstructExpr(CXXConstructExpr *e) {
    const CXXConstructorDecl *ctor = e->getConstructor();
    if (ctor != nullptr &&
        ctor->getParent()->getNameAsString() == "ScopedMemoryCharge") {
      polls = true;
    }
    return true;
  }
};

/// Call-graph-aware satisfaction: a function polls if its own body does,
/// if any callee with a body in this TU (transitively) polls, or if it
/// delegates across the TU boundary to another Compute* / anything that
/// receives the ExecContext or ComputeOptions (the callee is then itself
/// in slam-tidy's scope when its TU is analyzed).
bool SatisfiesPoll(const FunctionDecl *fd,
                   std::map<const FunctionDecl *, int> &memo) {
  if (fd == nullptr) return false;
  const FunctionDecl *canonical = fd->getCanonicalDecl();
  const auto it = memo.find(canonical);
  if (it != memo.end()) return it->second == 1;  // in-progress counts false
  memo[canonical] = 2;  // visiting (cycle guard)

  const FunctionDecl *def = nullptr;
  if (!fd->hasBody(def)) {
    bool ok = StartsWith(fd->getNameAsString(), "Compute");
    for (const ParmVarDecl *p : fd->parameters()) {
      const std::string t = p->getType().getAsString();
      if (Contains(t, "ExecContext") || Contains(t, "ComputeOptions")) {
        ok = true;
      }
    }
    memo[canonical] = ok ? 1 : 0;
    return ok;
  }

  PollScanner scanner;
  scanner.TraverseStmt(def->getBody());
  bool ok = scanner.polls;
  for (const FunctionDecl *callee : scanner.callees) {
    if (ok) break;
    ok = SatisfiesPoll(callee, memo);
  }
  memo[canonical] = ok ? 1 : 0;
  return ok;
}

class ExecContextPollCheck : public MatchFinder::MatchCallback {
 public:
  ExecContextPollCheck(FindingCollector &collector, const Options &opts)
      : collector_(collector), opts_(opts) {}

  void run(const MatchFinder::MatchResult &result) override {
    const auto *fd = result.Nodes.getNodeAs<FunctionDecl>("compute");
    if (fd == nullptr || !fd->doesThisDeclarationHaveABody()) return;
    const std::string ret = fd->getReturnType().getAsString();
    if (!Contains(ret, "Status") && !Contains(ret, "Result<")) return;
    const std::string path =
        EffectivePath(fd->getLocation(), *result.SourceManager, opts_);
    if (!UnderDir(path, "src/")) return;
    std::map<const FunctionDecl *, int> memo;
    if (SatisfiesPoll(fd, memo)) return;
    Emit(result, fd->getLocation(), opts_, collector_,
         "slam-exec-context-poll",
         fd->getNameAsString() +
             "() never consults its ExecContext on any call path: add an "
             "ExecCheck(exec, ...) poll (per row / per point) so "
             "cancellation, deadlines, and memory budgets cover it");
  }

 private:
  FindingCollector &collector_;
  const Options &opts_;
};

// ---------------------------------------------------------------------------
// slam-uncompensated-aggregate
// ---------------------------------------------------------------------------

bool IsAggregateChannelName(const std::string &name) {
  return name == "count" || name == "sum" || name == "sum_sq" ||
         name == "sum_sq_p" || name == "sum_quad" || name == "m_xx" ||
         name == "m_xy" || name == "m_yy";
}

bool IsAggregateRecordType(QualType type) {
  const CXXRecordDecl *record = type->getAsCXXRecordDecl();
  if (record == nullptr) return false;
  const std::string name = record->getNameAsString();
  return name == "RangeAggregates" || name == "CompensatedRangeAggregates";
}

/// True when `lhs` resolves — through any chain of member accesses,
/// references, or pointer dereferences — to a channel field of an
/// aggregate record (e.g. `agg.sum_sq`, `r->comps.m_xx`, `alias.sum.x`).
bool IsAggregateChannelAccess(const Expr *lhs) {
  const Expr *e = lhs->IgnoreParenImpCasts();
  const auto *member = dyn_cast<MemberExpr>(e);
  if (member == nullptr) return false;
  const Expr *base = member->getBase()->IgnoreParenImpCasts();
  QualType base_type = base->getType();
  if (base_type->isPointerType()) base_type = base_type->getPointeeType();
  if (IsAggregateRecordType(base_type)) {
    return IsAggregateChannelName(member->getMemberDecl()->getNameAsString());
  }
  // One level deeper for the Point-valued channels: agg.sum.x += v.
  return IsAggregateChannelAccess(base);
}

class UncompensatedAggregateCheck : public MatchFinder::MatchCallback {
 public:
  UncompensatedAggregateCheck(FindingCollector &collector, const Options &opts)
      : collector_(collector), opts_(opts) {}

  void run(const MatchFinder::MatchResult &result) override {
    const Expr *lhs = nullptr;
    SourceLocation loc;
    if (const auto *op = result.Nodes.getNodeAs<BinaryOperator>("agg_op")) {
      if (!op->isCompoundAssignmentOp()) return;
      const BinaryOperatorKind kind = op->getOpcode();
      if (kind != BO_AddAssign && kind != BO_SubAssign) return;
      lhs = op->getLHS();
      loc = op->getOperatorLoc();
    } else if (const auto *cxx_op =
                   result.Nodes.getNodeAs<CXXOperatorCallExpr>("agg_cxx_op")) {
      // Point::operator+= / -= on a Point-valued channel (agg.sum += p).
      const OverloadedOperatorKind kind = cxx_op->getOperator();
      if (kind != OO_PlusEqual && kind != OO_MinusEqual) return;
      if (cxx_op->getNumArgs() < 1) return;
      lhs = cxx_op->getArg(0);
      loc = cxx_op->getOperatorLoc();
    } else {
      return;
    }
    if (!IsAggregateChannelAccess(lhs)) return;
    const std::string path = EffectivePath(loc, *result.SourceManager, opts_);
    if (EndsWith(path, "kdv/kernel.h")) return;  // the sanctioned impl
    Emit(result, loc, opts_, collector_, "slam-uncompensated-aggregate",
         "direct +=/-= on an aggregate channel; accumulate via "
         "RangeAggregates::Add/Merge/Minus or NeumaierAdd (kdv/kernel.h) "
         "so compensation is never bypassed");
  }

 private:
  FindingCollector &collector_;
  const Options &opts_;
};

// ---------------------------------------------------------------------------
// slam-narrowing-cast
// ---------------------------------------------------------------------------

bool InNarrowingScope(const std::string &path) {
  if (EndsWith(path, "core/sweep_state.h")) return false;  // clamp home
  return UnderDir(path, "src/core/") || UnderDir(path, "src/kdv/");
}

/// Value-narrowing conversion: floating -> integral, wider integral ->
/// narrower integral, or double -> float. Same-width sign changes and
/// widenings are not findings (that is -Wconversion's turf; this check
/// exists for the conversions that silently drop pixel-index precision).
bool IsNarrowing(ASTContext &ctx, QualType from, QualType to) {
  from = from.getCanonicalType();
  to = to.getCanonicalType();
  if (from->isEnumeralType() || to->isEnumeralType()) return false;
  if (from->isRealFloatingType() && to->isIntegralType(ctx)) return true;
  if (from->isRealFloatingType() && to->isRealFloatingType()) {
    return ctx.getTypeSize(to) < ctx.getTypeSize(from);
  }
  if (from->isIntegralType(ctx) && to->isIntegralType(ctx)) {
    if (from->isBooleanType() || to->isBooleanType()) return false;
    return ctx.getTypeSize(to) < ctx.getTypeSize(from);
  }
  return false;
}

class NarrowingCastCheck : public MatchFinder::MatchCallback {
 public:
  NarrowingCastCheck(FindingCollector &collector, const Options &opts)
      : collector_(collector), opts_(opts) {}

  void run(const MatchFinder::MatchResult &result) override {
    const SourceManager &sm = *result.SourceManager;
    if (const auto *cast =
            result.Nodes.getNodeAs<ExplicitCastExpr>("explicit_cast")) {
      const std::string path =
          EffectivePath(cast->getBeginLoc(), sm, opts_);
      if (!InNarrowingScope(path)) return;
      const QualType from = cast->getSubExpr()->getType();
      const QualType to = cast->getType();
      if (!IsNarrowing(*result.Context, from, to)) return;
      Emit(result, cast->getBeginLoc(), opts_, collector_,
           "slam-narrowing-cast",
           "narrowing cast (" + from.getAsString() + " -> " +
               to.getAsString() +
               ") in pixel-index/aggregate math; use PixelIndex()/"
               "CheckedNarrow<>() from util/narrow.h, or move the clamp "
               "into sweep_state.h");
      return;
    }
    if (const auto *cast =
            result.Nodes.getNodeAs<ImplicitCastExpr>("implicit_cast")) {
      if (cast->getCastKind() != CK_FloatingToIntegral &&
          cast->getCastKind() != CK_FloatingCast &&
          cast->getCastKind() != CK_IntegralCast) {
        return;
      }
      const std::string path =
          EffectivePath(cast->getBeginLoc(), sm, opts_);
      if (!InNarrowingScope(path)) return;
      const QualType from = cast->getSubExpr()->getType();
      const QualType to = cast->getType();
      if (!IsNarrowing(*result.Context, from, to)) return;
      Emit(result, cast->getBeginLoc(), opts_, collector_,
           "slam-narrowing-cast",
           "implicit narrowing conversion (" + from.getAsString() + " -> " +
               to.getAsString() + ") in pixel-index/aggregate math");
      return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<DeclaratorDecl>("float_decl")) {
      const std::string path = EffectivePath(decl->getLocation(), sm, opts_);
      if (!InNarrowingScope(path)) return;
      const QualType type = decl->getType().getCanonicalType();
      if (!type->isSpecificBuiltinType(BuiltinType::Float)) return;
      Emit(result, decl->getLocation(), opts_, collector_,
           "slam-narrowing-cast",
           "`float` in sweep/aggregate math: the exactness guarantees "
           "(DESIGN.md) are double-precision only");
    }
  }

 private:
  FindingCollector &collector_;
  const Options &opts_;
};

// ---------------------------------------------------------------------------
// slam-raw-intrinsics-outside-simd
// ---------------------------------------------------------------------------

bool LooksLikeIntrinsicName(const std::string &name) {
  if (StartsWith(name, "_mm_") || StartsWith(name, "_mm256_") ||
      StartsWith(name, "_mm512_")) {
    return true;
  }
  // NEON loads/stores/arithmetic: vld1q_f64, vst1_u32, vaddq_f64, ...
  if (name.size() > 2 && name[0] == 'v' &&
      (StartsWith(name, "vld") || StartsWith(name, "vst") ||
       EndsWith(name, "q_f64") || EndsWith(name, "q_f32") ||
       EndsWith(name, "q_u64") || EndsWith(name, "q_s32"))) {
    return true;
  }
  return false;
}

bool LooksLikeVectorTypeName(const std::string &spelling) {
  if (Contains(spelling, "__m128") || Contains(spelling, "__m256") ||
      Contains(spelling, "__m512")) {
    return true;
  }
  // NEON vector typedefs: float64x2_t, int32x4_t, uint64x2_t, ...
  return Contains(spelling, "64x2_t") || Contains(spelling, "32x4_t") ||
         Contains(spelling, "16x8_t") || Contains(spelling, "8x16_t");
}

class RawIntrinsicsCheck : public MatchFinder::MatchCallback {
 public:
  RawIntrinsicsCheck(FindingCollector &collector, const Options &opts)
      : collector_(collector), opts_(opts) {}

  void run(const MatchFinder::MatchResult &result) override {
    const SourceManager &sm = *result.SourceManager;
    static const char *kMessage =
        "SIMD intrinsic outside src/simd/: vector code must live behind "
        "the dispatched backend tables (simd/sweep_ops.h) so it inherits "
        "the cpuid gating, contraction-free flags, and scalar-equivalence "
        "tests";
    if (const auto *call = result.Nodes.getNodeAs<CallExpr>("intrin_call")) {
      const FunctionDecl *callee = call->getDirectCallee();
      if (callee == nullptr ||
          !LooksLikeIntrinsicName(callee->getNameAsString())) {
        return;
      }
      const std::string path =
          EffectivePath(call->getBeginLoc(), sm, opts_);
      if (UnderDir(path, "src/simd/")) return;
      Emit(result, call->getBeginLoc(), opts_, collector_,
           "slam-raw-intrinsics-outside-simd", kMessage);
      return;
    }
    if (const auto *decl =
            result.Nodes.getNodeAs<DeclaratorDecl>("intrin_decl")) {
      if (!LooksLikeVectorTypeName(decl->getType().getAsString())) return;
      const std::string path = EffectivePath(decl->getLocation(), sm, opts_);
      if (UnderDir(path, "src/simd/")) return;
      Emit(result, decl->getLocation(), opts_, collector_,
           "slam-raw-intrinsics-outside-simd", kMessage);
    }
  }

 private:
  FindingCollector &collector_;
  const Options &opts_;
};

}  // namespace

bool FindingCollector::Report(const std::string &path, unsigned line,
                              unsigned column, const std::string &check,
                              const std::string &message) {
  const std::string key =
      path + ":" + std::to_string(line) + ":" + check;
  if (!seen_.insert(key).second) return false;
  llvm::errs() << path << ":" << line << ":" << column << ": warning: "
               << message << " [" << check << "]\n";
  return true;
}

void RegisterSlamChecks(MatchFinder &finder, FindingCollector &collector,
                        const Options &options) {
  // The callbacks leak (by design): they must outlive the finder, and the
  // tool process exits right after the run.
  auto *exec = new ExecContextPollCheck(collector, options);
  finder.addMatcher(
      functionDecl(matchesName("::Compute[A-Za-z0-9_]*$"), isDefinition())
          .bind("compute"),
      exec);

  auto *agg = new UncompensatedAggregateCheck(collector, options);
  finder.addMatcher(
      binaryOperator(hasAnyOperatorName("+=", "-=")).bind("agg_op"), agg);
  finder.addMatcher(cxxOperatorCallExpr(hasAnyOverloadedOperatorName(
                                            "+=", "-="))
                        .bind("agg_cxx_op"),
                    agg);

  auto *narrow = new NarrowingCastCheck(collector, options);
  finder.addMatcher(explicitCastExpr().bind("explicit_cast"), narrow);
  finder.addMatcher(implicitCastExpr().bind("implicit_cast"), narrow);
  finder.addMatcher(declaratorDecl().bind("float_decl"), narrow);

  auto *intrin = new RawIntrinsicsCheck(collector, options);
  finder.addMatcher(callExpr().bind("intrin_call"), intrin);
  finder.addMatcher(declaratorDecl().bind("intrin_decl"), intrin);
}

}  // namespace slam_tidy
