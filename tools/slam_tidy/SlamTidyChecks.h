// slam-tidy: AST-grounded checks for the SLAM repo invariants that the
// regex linter (scripts/lint_invariants.py) could only approximate.
//
// Four checks, each named like a clang-tidy check so `// NOLINT(slam-*)`
// waivers read the same way:
//
//   slam-exec-context-poll          every Compute* function returning
//                                   Status/Result must poll its ExecContext
//                                   — directly OR through any callee (the
//                                   regex rule could not follow calls).
//   slam-uncompensated-aggregate    no member +=/-= on RangeAggregates /
//                                   CompensatedRangeAggregates channels
//                                   outside kdv/kernel.h, through any
//                                   alias, reference, or nested member.
//   slam-narrowing-cast             no value-narrowing casts (floating ->
//                                   integral, wider -> narrower integral,
//                                   double -> float) and no `float`
//                                   declarations in the pixel/aggregate
//                                   math under src/core + src/kdv,
//                                   template instantiations included.
//   slam-raw-intrinsics-outside-simd
//                                   no SIMD intrinsic calls or vector
//                                   types outside src/simd/.
//
// Waive a finding on its own line with `// NOLINT(slam-<check>)` plus a
// reason in the surrounding comment; a bare `// NOLINT` waives all checks
// on that line (same semantics as clang-tidy, same-line form only).
#pragma once

#include <set>
#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"

namespace slam_tidy {

struct Options {
  // When non-empty, scope decisions for locations in the *main file* use
  // this path instead of the real one. Lets the regression corpus under
  // tools/slam_tidy/test/ exercise path-scoped checks (src/core/ vs
  // src/viz/ vs src/simd/) from a single directory.
  std::string assume_path;
  // When non-empty, findings are reported only for files under this
  // directory (the whole-tree mode over compile_commands.json). When
  // empty, only main-file findings are reported (the corpus mode).
  std::string repo_root;
};

class FindingCollector {
 public:
  // Records one finding; duplicates (same file:line:check, e.g. a header
  // included by many TUs, or a template body instantiated twice) collapse.
  // Returns true if the finding was new.
  bool Report(const std::string &path, unsigned line, unsigned column,
              const std::string &check, const std::string &message);

  int finding_count() const { return static_cast<int>(seen_.size()); }

 private:
  std::set<std::string> seen_;
};

// Registers all four checks on `finder`. `collector` and `options` must
// outlive the finder.
void RegisterSlamChecks(clang::ast_matchers::MatchFinder &finder,
                        FindingCollector &collector, const Options &options);

}  // namespace slam_tidy
