#!/usr/bin/env bash
# Regression driver for the slam-tidy AST checks.
#
# Corpus mode (default): runs every file under tools/slam_tidy/test/ and
# compares the findings slam-tidy reports against the `// EXPECT-FINDING:
# <check>` markers in the file (exact line + check match; negatives simply
# carry no markers). Each corpus file names its pretend repo path in a
# `// RUN-ASSUME-PATH:` directive so the path-scoped checks can be
# exercised from one directory.
#
# Tree mode (--tree <build_dir>): runs slam-tidy over every src/**/*.cc in
# the compilation database and fails on any finding — the zero-findings
# gate CI enforces.
#
# Usage:
#   check_slam_tidy.sh [--binary <slam-tidy>] [--tree <build_dir>]
#
# Exit: 0 all good (or tool not built: SKIP, exit 0 so local ctest stays
# green without LLVM dev packages), 1 mismatch/finding, 2 setup error.
set -u

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BINARY=""
TREE_BUILD_DIR=""

while [ $# -gt 0 ]; do
  case "$1" in
    --binary) BINARY="$2"; shift 2 ;;
    --tree) TREE_BUILD_DIR="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [ -z "$BINARY" ]; then
  for candidate in \
      "$ROOT/build/tools/slam_tidy/slam-tidy" \
      "$ROOT/build-tidy/tools/slam_tidy/slam-tidy"; do
    if [ -x "$candidate" ]; then BINARY="$candidate"; break; fi
  done
fi

if [ -z "$BINARY" ] || [ ! -x "$BINARY" ]; then
  echo "check_slam_tidy: SKIP — slam-tidy binary not built" \
       "(configure with -DSLAM_TIDY=ON and the LLVM/Clang dev packages)"
  exit 0
fi

fail=0

if [ -n "$TREE_BUILD_DIR" ]; then
  if [ ! -f "$TREE_BUILD_DIR/compile_commands.json" ]; then
    echo "check_slam_tidy: no compile_commands.json in $TREE_BUILD_DIR" >&2
    exit 2
  fi
  # Whole-tree gate: every first-party TU, zero findings allowed. Headers
  # are covered through the TUs that include them (findings dedupe).
  mapfile -t sources < <(cd "$ROOT" && find src -name '*.cc' | sort)
  if ! (cd "$ROOT" && "$BINARY" -p "$TREE_BUILD_DIR" --repo-root="$ROOT" \
        "${sources[@]}"); then
    echo "check_slam_tidy: findings in tree (see above)" >&2
    fail=1
  else
    echo "check_slam_tidy: tree clean (${#sources[@]} TUs)"
  fi
  exit $fail
fi

for corpus in "$ROOT"/tools/slam_tidy/test/*.cc; do
  name="$(basename "$corpus")"
  assume="$(sed -n 's|^// RUN-ASSUME-PATH: ||p' "$corpus" | head -n1)"
  if [ -z "$assume" ]; then
    echo "FAIL $name: missing // RUN-ASSUME-PATH: directive" >&2
    fail=1
    continue
  fi

  # Expected findings: "line check" pairs from the EXPECT-FINDING markers.
  expected="$(grep -n 'EXPECT-FINDING: ' "$corpus" \
      | sed 's/^\([0-9]*\):.*EXPECT-FINDING: \([a-z-]*\).*/\1 \2/' | sort)"

  # Actual findings: parse "path:line:col: warning: ... [check]" lines.
  output="$("$BINARY" --assume-path="$assume" "$corpus" -- \
      -std=c++20 -Wno-everything 2>&1)"
  actual="$(printf '%s\n' "$output" \
      | sed -n 's/^.*:\([0-9]*\):[0-9]*: warning: .*\[\([a-z-]*\)\]$/\1 \2/p' \
      | sort)"

  if [ "$expected" = "$actual" ]; then
    count="$(printf '%s' "$expected" | grep -c . || true)"
    echo "PASS $name (${count} expected finding(s))"
  else
    echo "FAIL $name" >&2
    echo "--- expected (line check) ---" >&2
    printf '%s\n' "$expected" >&2
    echo "--- actual (line check) ---" >&2
    printf '%s\n' "$actual" >&2
    echo "--- raw output ---" >&2
    printf '%s\n' "$output" >&2
    fail=1
  fi
done

exit $fail
