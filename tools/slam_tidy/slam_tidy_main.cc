// slam-tidy: standalone clang (libTooling) driver for the SLAM AST checks.
//
// Corpus mode (one file, path-scoping faked for the test corpus):
//   slam-tidy --assume-path=src/core/x.cc test/foo.cc -- -std=c++20
//
// Tree mode (whole repo over the exported compilation database):
//   slam-tidy --repo-root=$PWD -p build $(git ls-files 'src/**/*.cc')
//
// Exit status: 0 clean, 1 findings, 2 tool/setup error — mirroring
// scripts/lint_invariants.py so CI lanes treat both gates identically.
#include <string>

#include "SlamTidyChecks.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace {

llvm::cl::OptionCategory SlamTidyCategory("slam-tidy options");

llvm::cl::opt<std::string> AssumePath(
    "assume-path",
    llvm::cl::desc("Treat the main file as having this repo-relative path "
                   "for scope decisions (regression corpus only)"),
    llvm::cl::init(""), llvm::cl::cat(SlamTidyCategory));

llvm::cl::opt<std::string> RepoRoot(
    "repo-root",
    llvm::cl::desc("Report findings for any file under this directory "
                   "(whole-tree mode); default: main file only"),
    llvm::cl::init(""), llvm::cl::cat(SlamTidyCategory));

}  // namespace

int main(int argc, const char **argv) {
  auto expected_parser =
      clang::tooling::CommonOptionsParser::create(argc, argv,
                                                  SlamTidyCategory);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser &parser = *expected_parser;
  clang::tooling::ClangTool tool(parser.getCompilations(),
                                 parser.getSourcePathList());

  slam_tidy::Options options;
  options.assume_path = AssumePath;
  options.repo_root = RepoRoot;

  slam_tidy::FindingCollector collector;
  clang::ast_matchers::MatchFinder finder;
  slam_tidy::RegisterSlamChecks(finder, collector, options);

  const int run_status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (run_status != 0) {
    llvm::errs() << "slam-tidy: compilation errors while analyzing\n";
    return 2;
  }
  if (collector.finding_count() > 0) {
    llvm::errs() << "\nslam-tidy: " << collector.finding_count()
                 << " finding(s)\n";
    return 1;
  }
  llvm::outs() << "slam-tidy: clean\n";
  return 0;
}
