// slam-exec-context-poll negatives: outside src/ (bench harnesses drive
// computes with no serving budget), the rule does not apply; void-returning
// and non-Compute functions are never in scope either.
// RUN-ASSUME-PATH: bench/corpus_exec.cc

struct Status {
  static Status OK() { return Status(); }
};

namespace slam {

// Would be a finding under src/, but bench/ is out of scope.
Status ComputeNoPollInBench(int rows) {
  int acc = 0;
  for (int i = 0; i < rows; ++i) acc += i;
  return Status::OK();
}

// Wrong return type: the rule only covers Status/Result returns.
void ComputeVoidReturn(int) {}

// Not a Compute* entry point.
Status HelperWithoutPoll(int) { return Status::OK(); }

}  // namespace slam
