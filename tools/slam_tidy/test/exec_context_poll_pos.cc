// slam-exec-context-poll corpus: positives AND the call-graph cases the
// old regex rule could not express. Self-contained — stubs stand in for
// the repo types.
// RUN-ASSUME-PATH: src/core/corpus_exec.cc

struct Status {
  static Status OK() { return Status(); }
};
template <typename T>
struct Result {
  Result(T) {}
  Result(Status) {}
};
struct ExecContext {
  Status Check(const char *) const { return Status::OK(); }
};
Status ExecCheck(const ExecContext *, const char *) { return Status::OK(); }
struct ComputeOptions {
  const ExecContext *exec = nullptr;
};

namespace slam {

// Never consults the context on any path: finding.
Status ComputeNoPoll(int rows) {  // EXPECT-FINDING: slam-exec-context-poll
  int acc = 0;
  for (int i = 0; i < rows; ++i) acc += i;
  return acc >= 0 ? Status::OK() : Status::OK();
}

// Direct poll: clean.
Status ComputeDirectPoll(const ComputeOptions &options, int rows) {
  for (int i = 0; i < rows; ++i) {
    Status s = ExecCheck(options.exec, "row");
    (void)s;
  }
  return Status::OK();
}

// The call-graph case: the Compute* itself never polls, but its helper
// does. The regex rule needed a waiver here; the AST check follows the
// call.
Status RowLoopHelper(const ExecContext *exec, int rows) {
  for (int i = 0; i < rows; ++i) {
    Status s = ExecCheck(exec, "row");
    (void)s;
  }
  return Status::OK();
}
Status ComputeViaHelper(const ComputeOptions &options, int rows) {
  return RowLoopHelper(options.exec, rows);
}

// Two hops deep: still clean.
Status MiddleHelper(const ExecContext *exec, int rows) {
  return RowLoopHelper(exec, rows);
}
Status ComputeTwoHops(const ComputeOptions &options, int rows) {
  return MiddleHelper(options.exec, rows);
}

// Helper exists but never polls: the call graph bottoms out with no
// consultation anywhere, so the Compute* is a finding. The regex rule's
// forward-the-options heuristic wrongly accepted this shape.
Status DeadHelper(const ExecContext *, int rows) {
  int acc = 0;
  for (int i = 0; i < rows; ++i) acc += i;
  return Status::OK();
}
Status ComputeDeadHelper(  // EXPECT-FINDING: slam-exec-context-poll
    const ComputeOptions &options, int rows) {
  return DeadHelper(options.exec, rows);
}

// Delegation to a sibling Compute* declared in another TU: clean (the
// callee is checked when its own TU is analyzed).
Status ComputeInOtherTu(const ComputeOptions &options, int rows);
Status ComputeDelegating(const ComputeOptions &options, int rows) {
  return ComputeInOtherTu(options, rows);
}

// Mutually recursive Compute* pair with no poll anywhere: both findings
// (the cycle guard must not report satisfaction).
Status ComputeCycleB(int rows);
Status ComputeCycleA(int rows) {  // EXPECT-FINDING: slam-exec-context-poll
  return rows > 0 ? ComputeCycleB(rows - 1) : Status::OK();
}
Status ComputeCycleB(int rows) {  // EXPECT-FINDING: slam-exec-context-poll
  return rows > 0 ? ComputeCycleA(rows - 1) : Status::OK();
}

// Waived with a reason: the setup-only path has no per-row work to poll.
Status ComputeWaived(int) {  // NOLINT(slam-exec-context-poll)
  return Status::OK();
}

}  // namespace slam
