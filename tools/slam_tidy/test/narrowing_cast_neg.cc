// slam-narrowing-cast negatives: identical narrowing code OUTSIDE the
// src/core + src/kdv scope (viz quantizes doubles to pixel bytes all the
// time — that is its job).
// RUN-ASSUME-PATH: src/viz/corpus_narrow.cc

namespace slam {

int ExplicitFloatingToInt(double d) { return static_cast<int>(d); }

int CStyleCast(double d) { return (int)d; }

float QuantizedChannel(double intensity) {
  return static_cast<float>(intensity);
}

int ImplicitFloatingToInt(double d) {
  int i = d;
  return i;
}

}  // namespace slam
