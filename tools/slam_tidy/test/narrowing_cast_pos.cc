// slam-narrowing-cast corpus: every narrowing shape in scope, including
// the template instantiation the regex rule could not see, plus the
// conversions that must NOT fire (enum scaffolding, widening).
// RUN-ASSUME-PATH: src/core/corpus_narrow.cc

namespace slam {

enum class Method : int { kScan = 0, kSlamBucket = 1 };

int ExplicitFloatingToInt(double d) {
  return static_cast<int>(d);  // EXPECT-FINDING: slam-narrowing-cast
}

int CStyleCast(double d) {
  return (int)d;  // EXPECT-FINDING: slam-narrowing-cast
}

double ExplicitDoubleToFloat(double d) {
  double r = static_cast<float>(d);  // EXPECT-FINDING: slam-narrowing-cast
  return r;
}

long long WideSource() { return 1; }
int ExplicitWideToNarrow() {
  return static_cast<int>(WideSource());  // EXPECT-FINDING: slam-narrowing-cast
}

int ImplicitFloatingToInt(double d) {
  int i = d;  // EXPECT-FINDING: slam-narrowing-cast
  return i;
}

int ImplicitWideToNarrow(long long v) {
  int i = v;  // EXPECT-FINDING: slam-narrowing-cast
  return i;
}

// The template case: the cast only narrows once T = double is
// instantiated; the line regex saw `static_cast<int>(v)` with no type
// info at all.
template <typename T>
int TruncateTemplated(T v) {
  return static_cast<int>(v);  // EXPECT-FINDING: slam-narrowing-cast
}
int InstantiateNarrowing(double d) { return TruncateTemplated(d); }

float GlobalFloat = 0.0f;  // EXPECT-FINDING: slam-narrowing-cast

// --- Non-findings below: must stay silent. ---

// Enum scaffolding is not pixel math.
int EnumToInt(Method m) { return static_cast<int>(m); }

// Widening is fine.
double IntToDouble(int i) { return static_cast<double>(i); }
long long NarrowToWide(int i) { return static_cast<long long>(i); }

// Same-width conversions are -Wconversion's turf, not this check's.
unsigned SameWidth(int i) { return static_cast<unsigned>(i); }

// int-instantiated template: no narrowing materializes.
int InstantiateIdentity(int i) { return TruncateTemplated(i); }

// Waived with a reason: sanctioned clamped conversion site.
int WaivedCast(double d) {
  return static_cast<int>(d);  // NOLINT(slam-narrowing-cast)
}

}  // namespace slam
