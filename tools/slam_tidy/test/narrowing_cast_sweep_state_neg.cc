// slam-narrowing-cast negatives: core/sweep_state.h is the sanctioned
// home of the clamped float->index conversions (same exemption the regex
// rule had).
// RUN-ASSUME-PATH: src/core/sweep_state.h

namespace slam {

int ClampedBucket(double t, int count) {
  if (t <= 0.0) return 0;
  if (t >= static_cast<double>(count)) return count;
  return static_cast<int>(t);
}

}  // namespace slam
