// slam-raw-intrinsics-outside-simd negatives: the same intrinsic uses
// INSIDE src/simd/ are exactly where they belong.
// RUN-ASSUME-PATH: src/simd/corpus_intrin.cc

int _mm256_set1_pd(double);
int _mm256_add_pd(int, int);
int vld1q_f64(const double *);
using __m256i = int;

namespace slam {

double BackendKernel(const double *p, double v) {
  __m256i lanes = 0;
  int a = vld1q_f64(p);
  int b = _mm256_set1_pd(v);
  return _mm256_add_pd(a, b) + lanes;
}

}  // namespace slam
