// slam-raw-intrinsics-outside-simd corpus: intrinsic calls and vector
// types outside src/simd/. Self-contained stubs stand in for the real
// intrinsic headers (the check keys on names, and real <immintrin.h>
// findings are filtered as system-header noise anyway).
// RUN-ASSUME-PATH: src/core/corpus_intrin.cc

// Stubs: scalar-typed prototypes so only the *uses* below are findings.
int _mm256_set1_pd(double);
int _mm256_add_pd(int, int);
int _mm_loadu_pd(const double *);
int vld1q_f64(const double *);
int vaddq_f64(int, int);
using __m256i = int;
using float64x2_t = double;

namespace slam {

double SumAvx(const double *p, double v) {
  int a = _mm_loadu_pd(p);  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  int b = _mm256_set1_pd(v);  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  return a + b;
}

int SumAvxWide(int a, int b) {
  return _mm256_add_pd(a, b);  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
}

double SumNeon(const double *p) {
  int a = vld1q_f64(p);  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  int b = vaddq_f64(a, a);  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  return b;
}

void VectorTypedLocals(double v) {
  __m256i lanes = 0;  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  float64x2_t pair = v;  // EXPECT-FINDING: slam-raw-intrinsics-outside-simd
  (void)lanes;
  (void)pair;
}

// --- Non-findings below: must stay silent. ---

// Ordinary names that merely resemble intrinsic prefixes.
int mm_helper(int x);
int vstore_count(int x);
int NotIntrinsics(int x) { return mm_helper(x) + vstore_count(x); }

// Waived with a reason: prototype experiment pending backend port.
int WaivedIntrinsic(int a, int b) {
  return _mm256_add_pd(a, b);  // NOLINT(slam-raw-intrinsics-outside-simd)
}

}  // namespace slam
