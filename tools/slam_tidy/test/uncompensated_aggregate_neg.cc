// slam-uncompensated-aggregate negatives: same member names on unrelated
// records are fine (the regex rule false-positived on these), plain
// assignment is fine, and kdv/kernel.h itself is the sanctioned home of
// the accumulation loops.
// RUN-ASSUME-PATH: src/kdv/kernel.h

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct RangeAggregates {
  double count = 0.0;
  double sum_sq = 0.0;
  double m_xx = 0.0;
};

// An unrelated record that happens to share channel names.
struct Histogram {
  double count = 0.0;
  double sum_sq = 0.0;
};

namespace slam {

// Inside kdv/kernel.h: the Add/Merge/Minus implementations legitimately
// use += on channels.
void SanctionedAccumulation(RangeAggregates &agg, double v) {
  agg.sum_sq += v;
  agg.count += 1.0;
}

// Same member names, different record: never a finding regardless of
// file.
void UnrelatedRecord(Histogram &h, double v) {
  h.count += 1.0;
  h.sum_sq += v;
}

// Plain assignment (not accumulation) is not the rule's business.
void PlainAssignment(RangeAggregates &agg, double v) { agg.m_xx = v; }

// Local scalars that merely shadow the channel names.
void LocalShadow(double v) {
  double sum_sq = 0.0;
  sum_sq += v;
  (void)sum_sq;
}

}  // namespace slam
