// slam-uncompensated-aggregate corpus: direct channel mutation through
// every alias shape the regex rule missed.
// RUN-ASSUME-PATH: src/core/corpus_agg.cc

struct Point {
  double x = 0.0;
  double y = 0.0;
  Point &operator+=(const Point &o) {
    x += o.x;
    y += o.y;
    return *this;
  }
};

struct RangeAggregates {
  double count = 0.0;
  Point sum{};
  double sum_sq = 0.0;
  Point sum_sq_p{};
  double sum_quad = 0.0;
  double m_xx = 0.0;
  double m_xy = 0.0;
  double m_yy = 0.0;
};

struct CompensatedRangeAggregates {
  RangeAggregates sums;
  RangeAggregates comps;
};

namespace slam {

void DirectMutation(RangeAggregates &agg, double v) {
  agg.sum_sq += v;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Through a reference alias — invisible to a line regex keyed on the
// variable's declared type.
void AliasMutation(RangeAggregates &agg) {
  RangeAggregates &alias = agg;
  alias.m_xx += 1.0;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Through a pointer.
void PointerMutation(RangeAggregates *agg, double v) {
  agg->sum_quad -= v;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Nested member of a Point-valued channel.
void NestedMutation(RangeAggregates &agg, double v) {
  agg.sum.x += v;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Overloaded operator+= on a Point-valued channel routes through
// CXXOperatorCallExpr, not BinaryOperator.
void OperatorMutation(RangeAggregates &agg, const Point &p) {
  agg.sum += p;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Channel of the compensated wrapper's inner aggregates.
void CompensatedInner(CompensatedRangeAggregates &c, double v) {
  c.sums.sum_sq += v;  // EXPECT-FINDING: slam-uncompensated-aggregate
}

// Template function: the mutation only materializes at instantiation.
template <typename Agg>
void TemplatedMutation(Agg &agg, double v) {
  agg.m_yy += v;  // EXPECT-FINDING: slam-uncompensated-aggregate
}
void InstantiateTemplate(RangeAggregates &agg) { TemplatedMutation(agg, 1.0); }

// Waived with a reason: test-only fixture seeding exact values.
void WaivedMutation(RangeAggregates &agg) {
  agg.count += 1.0;  // NOLINT(slam-uncompensated-aggregate)
}

}  // namespace slam
